#pragma once

#include <cstddef>
#include <string>

namespace mrpf::env {

/// Result of parsing an environment knob with the shared strict grammar.
struct ParsedInt {
  bool well_formed = false;  ///< Value matched the grammar.
  long long value = 0;       ///< Parsed (and clamped) value when well-formed.
};

/// Shared grammar for MRPF_* integer knobs: one or more decimal digits,
/// value >= 1. No sign, no whitespace, no suffix. Values above `clamp_max`
/// clamp to `clamp_max`. A null/empty/garbage string is not well-formed.
ParsedInt parse_positive_int(const char* value, long long clamp_max);

/// Case-insensitive comparison against an all-lowercase literal — used for
/// the "off" spelling of disable knobs.
bool equals_ignore_case(const char* value, const char* lower);

/// Result of parsing the MRPF_EXEC execution-mode knob. `mode` is kept as
/// a plain int so common/ stays free of exec/ types; exec::ExecMode mirrors
/// the numbering.
struct ParsedExecMode {
  bool well_formed = false;  ///< Value matched the grammar below.
  int mode = 2;              ///< 0 = off, 1 = interp, 2 = vector.
  int lanes = 0;             ///< 0 = engine default; "vector:N" sets N.
};

/// Strict grammar for MRPF_EXEC: exactly "off", "interp", "vector", or
/// "vector:N" (words case-insensitive). N follows the parse_positive_int
/// grammar — one or more decimal digits, value >= 1 — and clamps to 64
/// lanes. Anything else ("fast", "vector:", "vector:0", "vector:8x",
/// trailing whitespace) is not well-formed; callers warn_once and fall
/// back to the default so a typo can never silently change the engine.
ParsedExecMode parse_exec_mode(const char* value);

/// Result of parsing the MRPF_CACHE knob with the shared grammar:
/// "0"/"off" (case-insensitive) disable, a positive decimal integer is a
/// capacity in MiB (clamped to [1, 65536]), null/empty means "defaults".
/// Anything else is not well-formed (callers warn_once and keep defaults).
struct ParsedCacheKnob {
  bool well_formed = true;     ///< False only for a malformed value.
  bool disabled = false;       ///< "0" or "off".
  std::size_t max_bytes = 0;   ///< Capacity override in bytes; 0 = default.
};

ParsedCacheKnob parse_cache_knob(const char* value);

/// One-shot snapshot of every MRPF_* runtime knob, taken with a single
/// getenv pass per key. Long-running processes (the mrpf_serve daemon)
/// snapshot once at startup and pass the struct down explicitly — the
/// one-shot CLIs' pattern of re-reading the environment per solve is a
/// latent bug in a server, where mid-run setenv from another thread is
/// undefined behavior and per-request getenv races the warn-once state.
struct KnobSnapshot {
  /// MRPF_THREADS when set and well-formed; 0 = unset/malformed (resolve
  /// to the hardware default at the use site).
  int threads = 0;
  /// MRPF_CACHE: disabled / capacity override (0 = keep default).
  bool cache_disabled = false;
  std::size_t cache_max_bytes = 0;
  /// MRPF_EXEC: same numbering as ParsedExecMode (2 = vector default).
  int exec_mode = 2;
  int exec_lanes = 0;
  /// MRPF_OPT_BUDGET when set and well-formed (strict digits-only grammar,
  /// clamped to 10^12 steps); 0 = unset/malformed (resolve to
  /// core::kDefaultOptBudget at the use site).
  long long opt_budget = 0;
  /// MRPF_XFORM_BUDGET, same grammar and clamp as opt_budget; 0 =
  /// unset/malformed (resolve to core::kDefaultXformBudget at the use
  /// site). Only a budget: the knob never turns the e-graph pass on.
  long long xform_budget = 0;
};

/// Reads MRPF_THREADS, MRPF_CACHE, MRPF_EXEC, MRPF_OPT_BUDGET and
/// MRPF_XFORM_BUDGET once each, applying the
/// shared strict grammars. Malformed values warn_once (same keys as the
/// lazy per-call readers, so a process never warns twice for one knob)
/// and leave the corresponding field at its default. Thread-safe:
/// concurrent first calls are race-free.
KnobSnapshot snapshot_knobs();

/// Emits `message` on stderr at most once per process per `key`.
/// Subsequent calls for the same key are silent, so a knob misspelled in the
/// environment warns once rather than once per solve.
void warn_once(const char* key, const std::string& message);

/// True once warn_once() has fired for `key` — lets tests assert the
/// one-time-warning semantics without capturing stderr.
bool warning_fired(const char* key);

}  // namespace mrpf::env
