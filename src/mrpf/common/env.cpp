#include "mrpf/common/env.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>

namespace mrpf::env {

namespace {

std::mutex& warn_mutex() {
  static std::mutex mu;
  return mu;
}

std::set<std::string>& warned_keys() {
  static std::set<std::string> keys;
  return keys;
}

}  // namespace

ParsedInt parse_positive_int(const char* value, long long clamp_max) {
  ParsedInt out;
  if (value == nullptr || value[0] == '\0') return out;
  long long parsed = 0;
  for (const char* p = value; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return out;
    // Cap accumulation well above every knob's clamp so absurdly long digit
    // strings can't overflow `long long` before the clamp applies.
    if (parsed <= clamp_max) parsed = parsed * 10 + (*p - '0');
  }
  if (parsed < 1) return out;
  out.well_formed = true;
  out.value = parsed > clamp_max ? clamp_max : parsed;
  return out;
}

ParsedExecMode parse_exec_mode(const char* value) {
  ParsedExecMode out;
  if (value == nullptr || value[0] == '\0') return out;
  if (equals_ignore_case(value, "off")) {
    out.well_formed = true;
    out.mode = 0;
    return out;
  }
  if (equals_ignore_case(value, "interp")) {
    out.well_formed = true;
    out.mode = 1;
    return out;
  }
  if (equals_ignore_case(value, "vector")) {
    out.well_formed = true;
    out.mode = 2;
    return out;
  }
  // "vector:N" — split at the first colon, then reuse the strict integer
  // grammar for the lane count (clamped to 64 lanes).
  const char* colon = std::strchr(value, ':');
  if (colon == nullptr) return out;
  const std::string word(value, static_cast<std::size_t>(colon - value));
  if (!equals_ignore_case(word.c_str(), "vector")) return out;
  const ParsedInt lanes = parse_positive_int(colon + 1, 64);
  if (!lanes.well_formed) return out;
  out.well_formed = true;
  out.mode = 2;
  out.lanes = static_cast<int>(lanes.value);
  return out;
}

bool equals_ignore_case(const char* value, const char* lower) {
  if (value == nullptr) return false;
  std::size_t i = 0;
  for (; value[i] != '\0' && lower[i] != '\0'; ++i) {
    if (std::tolower(static_cast<unsigned char>(value[i])) != lower[i]) {
      return false;
    }
  }
  return value[i] == '\0' && lower[i] == '\0';
}

ParsedCacheKnob parse_cache_knob(const char* value) {
  ParsedCacheKnob out;
  if (value == nullptr || value[0] == '\0') return out;
  if (std::string(value) == "0" || equals_ignore_case(value, "off")) {
    out.disabled = true;
    return out;
  }
  // Capacity clamps to [1 MiB, 64 GiB] — absurd values are almost
  // certainly typos but a clamp keeps the knob forgiving.
  const ParsedInt mib = parse_positive_int(value, 65536);
  if (!mib.well_formed) {
    out.well_formed = false;
    return out;
  }
  out.max_bytes = static_cast<std::size_t>(mib.value) << 20;
  return out;
}

KnobSnapshot snapshot_knobs() {
  KnobSnapshot s;
  if (const char* v = std::getenv("MRPF_THREADS")) {
    const ParsedInt p = parse_positive_int(v, 512);
    if (p.well_formed) {
      s.threads = static_cast<int>(p.value);
    } else {
      warn_once("MRPF_THREADS",
                "mrpf: ignoring malformed MRPF_THREADS=\"" + std::string(v) +
                    "\" — expected a decimal integer >= 1; using the "
                    "hardware default");
    }
  }
  if (const char* v = std::getenv("MRPF_CACHE")) {
    const ParsedCacheKnob c = parse_cache_knob(v);
    if (c.well_formed) {
      s.cache_disabled = c.disabled;
      s.cache_max_bytes = c.max_bytes;
    } else {
      warn_once("MRPF_CACHE",
                "mrpf: ignoring malformed MRPF_CACHE value \"" +
                    std::string(v) +
                    "\" (expected \"off\", \"0\", or a capacity in MiB)");
    }
  }
  if (const char* v = std::getenv("MRPF_OPT_BUDGET")) {
    // Clamp mirrors core::kMaxOptBudget (common/ stays free of core types).
    const ParsedInt p = parse_positive_int(v, 1'000'000'000'000);
    if (p.well_formed) {
      s.opt_budget = p.value;
    } else {
      warn_once("MRPF_OPT_BUDGET",
                "mrpf: ignoring malformed MRPF_OPT_BUDGET=\"" +
                    std::string(v) +
                    "\" — expected a decimal integer >= 1; using the "
                    "built-in search budget");
    }
  }
  if (const char* v = std::getenv("MRPF_XFORM_BUDGET")) {
    // Clamp mirrors core::kMaxXformBudget (common/ stays free of core
    // types).
    const ParsedInt p = parse_positive_int(v, 1'000'000'000'000);
    if (p.well_formed) {
      s.xform_budget = p.value;
    } else {
      warn_once("MRPF_XFORM_BUDGET",
                "mrpf: ignoring malformed MRPF_XFORM_BUDGET=\"" +
                    std::string(v) +
                    "\" — expected a decimal integer >= 1; using the "
                    "built-in saturation budget");
    }
  }
  if (const char* v = std::getenv("MRPF_EXEC")) {
    const ParsedExecMode m = parse_exec_mode(v);
    if (m.well_formed) {
      s.exec_mode = m.mode;
      s.exec_lanes = m.lanes;
    } else {
      warn_once("MRPF_EXEC",
                "mrpf: ignoring malformed MRPF_EXEC value \"" +
                    std::string(v) +
                    "\" (expected off|interp|vector|vector:<lanes>)");
    }
  }
  return s;
}

void warn_once(const char* key, const std::string& message) {
  {
    std::lock_guard<std::mutex> lk(warn_mutex());
    if (!warned_keys().insert(key).second) return;
  }
  std::fprintf(stderr, "%s\n", message.c_str());
}

bool warning_fired(const char* key) {
  std::lock_guard<std::mutex> lk(warn_mutex());
  return warned_keys().count(key) != 0;
}

}  // namespace mrpf::env
