#include "mrpf/filter/measure.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "mrpf/common/error.hpp"
#include "mrpf/dsp/freq_response.hpp"

namespace mrpf::filter {

Measurement measure(const std::vector<double>& h, const FilterSpec& spec,
                    int grid_points) {
  MRPF_CHECK(!h.empty(), "measure: empty filter");
  MRPF_CHECK(grid_points >= 16, "measure: grid too small");

  Measurement out;
  out.max_passband_gain = 0.0;
  out.min_passband_gain = std::numeric_limits<double>::infinity();
  out.max_stopband_gain = 0.0;

  for (const Band& band : spec.bands()) {
    const bool is_pass = band.desired > 0.5;
    const int n = std::max(
        8, static_cast<int>((band.f_hi - band.f_lo) * grid_points));
    for (int i = 0; i <= n; ++i) {
      const double f = band.f_lo + (band.f_hi - band.f_lo) *
                                       static_cast<double>(i) /
                                       static_cast<double>(n);
      const double mag = std::abs(dsp::freq_response_at(h, f));
      if (is_pass) {
        out.max_passband_gain = std::max(out.max_passband_gain, mag);
        out.min_passband_gain = std::min(out.min_passband_gain, mag);
      } else {
        out.max_stopband_gain = std::max(out.max_stopband_gain, mag);
      }
    }
  }

  const double dev = std::max(std::fabs(out.max_passband_gain - 1.0),
                              std::fabs(1.0 - out.min_passband_gain));
  out.passband_ripple_db = -20.0 * std::log10(std::max(1.0 - dev, 1e-15));
  out.stopband_atten_db =
      -20.0 * std::log10(std::max(out.max_stopband_gain, 1e-15));
  return out;
}

bool meets_spec(const std::vector<double>& h, const FilterSpec& spec,
                double slack_db, int grid_points) {
  const Measurement m = measure(h, spec, grid_points);
  return m.passband_ripple_db <= spec.passband_ripple_db + slack_db &&
         m.stopband_atten_db >= spec.stopband_atten_db - slack_db;
}

}  // namespace mrpf::filter
