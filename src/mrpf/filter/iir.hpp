// IIR filter design (Butterworth, bilinear transform).
//
// The paper notes (§1) that MRP applies "to any application which can be
// expressed as a vector scaling operation, like transposed direct form IIR
// filters": the feed-forward bank {b_i} scales the input broadcast and the
// feedback bank {a_i} scales the output broadcast. This module provides
// the IIR substrate: analog Butterworth prototypes mapped through the
// bilinear transform into biquad cascades, cascade→direct-form expansion,
// and double-precision reference filtering.
#pragma once

#include <complex>
#include <vector>

#include "mrpf/filter/spec.hpp"

namespace mrpf::filter {

/// One second-order section: H(z) = (b0 + b1 z^-1 + b2 z^-2) /
/// (1 + a1 z^-1 + a2 z^-2). First-order sections set b2 = a2 = 0.
struct Biquad {
  double b0 = 1.0, b1 = 0.0, b2 = 0.0;
  double a1 = 0.0, a2 = 0.0;
};

struct IirDesign {
  std::vector<Biquad> sections;  // cascade, applied in order

  /// Direct-form coefficients of the expanded cascade:
  /// numerator b[0..order], denominator a[0..order] with a[0] == 1.
  struct DirectForm {
    std::vector<double> b;
    std::vector<double> a;
  };
  DirectForm direct_form() const;

  std::complex<double> response_at(double f) const;  // f in [0,1], Nyquist=1
};

/// Digital Butterworth low-pass/high-pass of the given order with -3 dB
/// cutoff fc (normalized, 0 < fc < 1). Throws on band-pass/stop (use two
/// cascaded designs) or invalid arguments.
IirDesign design_butterworth_iir(BandType band, double fc, int order);

/// Double-precision cascade filtering (reference model).
std::vector<double> iir_filter(const IirDesign& design,
                               const std::vector<double>& x);

/// Direct-form filtering from explicit (b, a) (reference model for the
/// fixed-point path): y[n] = Σ b_k x[n-k] − Σ_{k≥1} a_k y[n-k].
std::vector<double> iir_filter_direct(const std::vector<double>& b,
                                      const std::vector<double>& a,
                                      const std::vector<double>& x);

}  // namespace mrpf::filter
