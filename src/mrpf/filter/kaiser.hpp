// Kaiser-window FIR design: ideal band-selective impulse response times a
// Kaiser window sized from the attenuation/transition-width spec.
#pragma once

#include <vector>

#include "mrpf/filter/spec.hpp"

namespace mrpf::filter {

/// Ideal (sinc) linear-phase impulse response of length num_taps for the
/// band type. Cutoffs are placed mid-transition; edges as in FilterSpec.
std::vector<double> ideal_impulse_response(BandType band,
                                           const std::vector<double>& edges,
                                           int num_taps);

/// Kaiser-window design: num_taps == 0 lets the Kaiser length formula pick
/// the (odd) length from atten_db and the narrowest transition band.
std::vector<double> design_kaiser(BandType band,
                                  const std::vector<double>& edges,
                                  double atten_db, int num_taps = 0);

}  // namespace mrpf::filter
