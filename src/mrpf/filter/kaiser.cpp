#include "mrpf/filter/kaiser.hpp"

#include <algorithm>
#include <cmath>

#include "mrpf/common/error.hpp"
#include "mrpf/dsp/window.hpp"

namespace mrpf::filter {

namespace {

/// h_ideal of a lowpass with cutoff fc (normalized), centered at m.
double lowpass_tap(double fc, int n, int m) {
  if (n == m) return fc;
  const double t = M_PI * static_cast<double>(n - m);
  return std::sin(fc * t) / t;
}

}  // namespace

std::vector<double> ideal_impulse_response(BandType band,
                                           const std::vector<double>& edges,
                                           int num_taps) {
  MRPF_CHECK(num_taps >= 3 && num_taps % 2 == 1,
             "ideal_impulse_response: num_taps must be odd and >= 3");
  const int m = (num_taps - 1) / 2;
  std::vector<double> h(static_cast<std::size_t>(num_taps), 0.0);

  auto mid = [](double a, double b) { return (a + b) / 2.0; };
  for (int n = 0; n < num_taps; ++n) {
    double v = 0.0;
    switch (band) {
      case BandType::kLowPass: {
        MRPF_CHECK(edges.size() == 2, "LP needs {f_pass, f_stop}");
        v = lowpass_tap(mid(edges[0], edges[1]), n, m);
        break;
      }
      case BandType::kHighPass: {
        MRPF_CHECK(edges.size() == 2, "HP needs {f_stop, f_pass}");
        const double fc = mid(edges[0], edges[1]);
        v = (n == m ? 1.0 : 0.0) - lowpass_tap(fc, n, m);
        break;
      }
      case BandType::kBandPass: {
        MRPF_CHECK(edges.size() == 4, "BP needs 4 edges");
        v = lowpass_tap(mid(edges[2], edges[3]), n, m) -
            lowpass_tap(mid(edges[0], edges[1]), n, m);
        break;
      }
      case BandType::kBandStop: {
        MRPF_CHECK(edges.size() == 4, "BS needs 4 edges");
        // Stop band is [edges[1], edges[2]]; cutoffs sit mid-transition.
        v = (n == m ? 1.0 : 0.0) -
            (lowpass_tap(mid(edges[2], edges[3]), n, m) -
             lowpass_tap(mid(edges[0], edges[1]), n, m));
        break;
      }
    }
    h[static_cast<std::size_t>(n)] = v;
  }
  return h;
}

std::vector<double> design_kaiser(BandType band,
                                  const std::vector<double>& edges,
                                  double atten_db, int num_taps) {
  MRPF_CHECK(atten_db > 0.0, "design_kaiser: attenuation must be positive");
  MRPF_CHECK(edges.size() == 2 || edges.size() == 4,
             "design_kaiser: need 2 or 4 edges");
  double min_transition = 1.0;
  for (std::size_t i = 0; i + 1 < edges.size(); i += 2) {
    min_transition = std::min(min_transition, edges[i + 1] - edges[i]);
  }
  if (num_taps == 0) {
    num_taps = dsp::kaiser_length_for_spec(atten_db, min_transition);
    if (num_taps % 2 == 0) ++num_taps;
  }
  MRPF_CHECK(num_taps % 2 == 1, "design_kaiser: num_taps must be odd");

  std::vector<double> h = ideal_impulse_response(band, edges, num_taps);
  const std::vector<double> w = dsp::window_kaiser(
      num_taps, dsp::kaiser_beta_for_attenuation(atten_db));
  for (std::size_t i = 0; i < h.size(); ++i) h[i] *= w[i];
  return h;
}

}  // namespace mrpf::filter
