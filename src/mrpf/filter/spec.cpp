#include "mrpf/filter/spec.hpp"

#include <cmath>

#include "mrpf/common/error.hpp"

namespace mrpf::filter {

namespace {

int expected_edge_count(BandType b) {
  switch (b) {
    case BandType::kLowPass:
    case BandType::kHighPass:
      return 2;
    case BandType::kBandPass:
    case BandType::kBandStop:
      return 4;
  }
  return 0;
}

}  // namespace

void FilterSpec::validate() const {
  MRPF_CHECK(static_cast<int>(edges.size()) == expected_edge_count(band),
             "FilterSpec: wrong number of band edges for band type");
  double prev = 0.0;
  for (const double e : edges) {
    MRPF_CHECK(e > prev && e < 1.0,
               "FilterSpec: edges must be ascending inside (0, 1)");
    prev = e;
  }
  MRPF_CHECK(num_taps >= 3, "FilterSpec: num_taps must be >= 3");
  MRPF_CHECK(num_taps % 2 == 1,
             "FilterSpec: only odd lengths (type-I linear phase) supported");
  MRPF_CHECK(passband_ripple_db > 0.0, "FilterSpec: ripple must be positive");
  MRPF_CHECK(stopband_atten_db > 0.0,
             "FilterSpec: attenuation must be positive");
  MRPF_CHECK(butterworth_order >= 1 && butterworth_order <= 20,
             "FilterSpec: butterworth_order out of range");
}

std::vector<Band> FilterSpec::bands() const {
  validate();
  // Classic PM weighting makes the weighted ripples equal: weight stopbands
  // by δp/δs so a unit weighted error corresponds to δp in passbands.
  const double dp = 1.0 - std::pow(10.0, -passband_ripple_db / 20.0);
  const double ds = std::pow(10.0, -stopband_atten_db / 20.0);
  const double ws = dp / ds;

  switch (band) {
    case BandType::kLowPass:
      return {{0.0, edges[0], 1.0, 1.0}, {edges[1], 1.0, 0.0, ws}};
    case BandType::kHighPass:
      return {{0.0, edges[0], 0.0, ws}, {edges[1], 1.0, 1.0, 1.0}};
    case BandType::kBandPass:
      return {{0.0, edges[0], 0.0, ws},
              {edges[1], edges[2], 1.0, 1.0},
              {edges[3], 1.0, 0.0, ws}};
    case BandType::kBandStop:
      return {{0.0, edges[0], 1.0, 1.0},
              {edges[1], edges[2], 0.0, ws},
              {edges[3], 1.0, 1.0, 1.0}};
  }
  throw Error("FilterSpec::bands: unknown band type");
}

std::string to_string(BandType b) {
  switch (b) {
    case BandType::kLowPass:
      return "LP";
    case BandType::kHighPass:
      return "HP";
    case BandType::kBandPass:
      return "BP";
    case BandType::kBandStop:
      return "BS";
  }
  return "?";
}

std::string to_string(DesignMethod m) {
  switch (m) {
    case DesignMethod::kParksMcClellan:
      return "PM";
    case DesignMethod::kLeastSquares:
      return "LS";
    case DesignMethod::kButterworthFir:
      return "BW";
    case DesignMethod::kKaiserWindow:
      return "KW";
  }
  return "?";
}

}  // namespace mrpf::filter
