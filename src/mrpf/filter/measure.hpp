// Frequency-domain measurement of a designed filter against its spec:
// realized passband ripple and stopband attenuation on a dense grid.
#pragma once

#include <vector>

#include "mrpf/filter/spec.hpp"

namespace mrpf::filter {

struct Measurement {
  double passband_ripple_db = 0.0;   // max deviation from unity, in dB
  double stopband_atten_db = 0.0;    // min attenuation over stop bands
  double max_passband_gain = 0.0;    // linear
  double min_passband_gain = 0.0;    // linear
  double max_stopband_gain = 0.0;    // linear
};

/// Measures h over the bands of `spec` using `grid_points` per unit band.
Measurement measure(const std::vector<double>& h, const FilterSpec& spec,
                    int grid_points = 2048);

/// True when the realized response meets the spec within `slack_db`.
bool meets_spec(const std::vector<double>& h, const FilterSpec& spec,
                double slack_db = 0.0, int grid_points = 2048);

}  // namespace mrpf::filter
