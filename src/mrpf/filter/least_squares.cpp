#include "mrpf/filter/least_squares.hpp"

#include <cmath>

#include "mrpf/common/error.hpp"
#include "mrpf/dsp/linalg.hpp"

namespace mrpf::filter {

namespace {

/// ∫_{f1}^{f2} cos(πkf)·cos(πlf) df, closed form.
double cos_inner(int k, int l, double f1, double f2) {
  const double a = M_PI * k;
  const double b = M_PI * l;
  if (k == 0 && l == 0) return f2 - f1;
  if (k == l) {
    return (f2 - f1) / 2.0 +
           (std::sin(2.0 * a * f2) - std::sin(2.0 * a * f1)) / (4.0 * a);
  }
  const double d = a - b;
  const double s = a + b;
  return (std::sin(d * f2) - std::sin(d * f1)) / (2.0 * d) +
         (std::sin(s * f2) - std::sin(s * f1)) / (2.0 * s);
}

/// ∫_{f1}^{f2} cos(πkf) df.
double cos_moment(int k, double f1, double f2) {
  if (k == 0) return f2 - f1;
  const double a = M_PI * k;
  return (std::sin(a * f2) - std::sin(a * f1)) / a;
}

}  // namespace

std::vector<double> design_least_squares(const std::vector<Band>& bands,
                                         int num_taps) {
  MRPF_CHECK(num_taps >= 3 && num_taps % 2 == 1,
             "least_squares: num_taps must be odd and >= 3");
  MRPF_CHECK(!bands.empty(), "least_squares: no bands");

  const int m = (num_taps - 1) / 2;
  const int r = m + 1;

  dsp::Matrix q(r, r);
  std::vector<double> rhs(static_cast<std::size_t>(r), 0.0);
  for (const Band& band : bands) {
    MRPF_CHECK(band.f_hi > band.f_lo, "least_squares: empty band");
    MRPF_CHECK(band.weight > 0.0, "least_squares: non-positive weight");
    for (int k = 0; k < r; ++k) {
      for (int l = k; l < r; ++l) {
        const double v =
            band.weight * cos_inner(k, l, band.f_lo, band.f_hi);
        q.at(k, l) += v;
        if (l != k) q.at(l, k) += v;
      }
      rhs[static_cast<std::size_t>(k)] +=
          band.weight * band.desired * cos_moment(k, band.f_lo, band.f_hi);
    }
  }

  const std::vector<double> a = dsp::solve_linear(q, rhs);

  std::vector<double> h(static_cast<std::size_t>(num_taps), 0.0);
  h[static_cast<std::size_t>(m)] = a[0];
  for (int k = 1; k <= m; ++k) {
    h[static_cast<std::size_t>(m - k)] = a[static_cast<std::size_t>(k)] / 2.0;
    h[static_cast<std::size_t>(m + k)] = a[static_cast<std::size_t>(k)] / 2.0;
  }
  return h;
}

}  // namespace mrpf::filter
