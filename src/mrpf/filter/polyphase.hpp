// Polyphase decomposition for multirate FIR filters.
//
// A decimate-by-M filter splits h into M subfilters e_k[q] = h[qM + k];
// each branch runs at the low rate on its own input phase. Within one
// branch the transposed direct form broadcasts a single low-rate sample to
// all of that branch's coefficients — a vector scaling again — so MRP/CSE
// apply per branch (and, instructively, cannot share across branches,
// whose multiplicands differ).
#pragma once

#include <vector>

#include "mrpf/common/bits.hpp"

namespace mrpf::filter {

/// Subfilters e_k[q] = h[qM + k], k = 0..factor-1 (trailing zeros trimmed
/// per branch, empty branches possible for short filters).
std::vector<std::vector<double>> polyphase_decompose(
    const std::vector<double>& h, int factor);
std::vector<std::vector<i64>> polyphase_decompose(const std::vector<i64>& h,
                                                  int factor);

/// Reference decimator: y[m] = (c ⊛ x)[mM], exact integers,
/// m = 0..floor((|x|-1)/M).
std::vector<i64> decimate_exact(const std::vector<i64>& c, int factor,
                                const std::vector<i64>& x);

/// Reference interpolator: zero-stuff x by L then filter with c;
/// y[n] = Σ_q c[n − qL]·x[q], length |x|·L.
std::vector<i64> interpolate_exact(const std::vector<i64>& c, int factor,
                                   const std::vector<i64>& x);

}  // namespace mrpf::filter
