// Filter specifications.
//
// Frequencies are normalized to [0, 1] with 1 = Nyquist (ω = π·f). A spec
// is a band type plus its edges; designers receive the equivalent
// piecewise-constant Band list (desired value + weight per band).
#pragma once

#include <string>
#include <vector>

namespace mrpf::filter {

enum class BandType { kLowPass, kHighPass, kBandPass, kBandStop };
enum class DesignMethod {
  kParksMcClellan,   // "PM" in the paper's Table 1
  kLeastSquares,     // "LS"
  kButterworthFir,   // "BW": Butterworth magnitude sampled into a FIR
  kKaiserWindow,     // extra design path (not in Table 1)
};

/// One piecewise-constant band of the desired amplitude response.
struct Band {
  double f_lo = 0.0;     // inclusive, normalized
  double f_hi = 0.0;     // inclusive, normalized
  double desired = 0.0;  // target amplitude (1 pass, 0 stop)
  double weight = 1.0;   // error weight
};

struct FilterSpec {
  std::string name;
  DesignMethod method = DesignMethod::kParksMcClellan;
  BandType band = BandType::kLowPass;
  /// Band edges, ascending, inside (0, 1):
  ///  LP/HP: {f_pass, f_stop} (LP) or {f_stop, f_pass} (HP);
  ///  BP:    {f_stop1, f_pass1, f_pass2, f_stop2};
  ///  BS:    {f_pass1, f_stop1, f_stop2, f_pass2}.
  std::vector<double> edges;
  double passband_ripple_db = 1.0;
  double stopband_atten_db = 40.0;
  int num_taps = 0;           // must be odd (type-I linear phase)
  int butterworth_order = 5;  // analog prototype order (BW method only)

  /// Validates edge ordering/count for the band type; throws on violation.
  void validate() const;

  /// Piecewise-constant desired response with ripple-derived weights
  /// (weight = 1 in passbands, δp/δs in stopbands, the classic weighting).
  std::vector<Band> bands() const;
};

std::string to_string(BandType b);
std::string to_string(DesignMethod m);

}  // namespace mrpf::filter
