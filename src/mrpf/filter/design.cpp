#include "mrpf/filter/design.hpp"

#include "mrpf/common/error.hpp"
#include "mrpf/filter/butterworth.hpp"
#include "mrpf/filter/kaiser.hpp"
#include "mrpf/filter/least_squares.hpp"
#include "mrpf/filter/remez.hpp"

namespace mrpf::filter {

namespace {

/// Butterworth prototypes take cutoff frequencies (mid-transition), not
/// pass/stop edge pairs.
std::vector<double> butterworth_edges(const FilterSpec& spec) {
  switch (spec.band) {
    case BandType::kLowPass:
    case BandType::kHighPass:
      return {(spec.edges[0] + spec.edges[1]) / 2.0};
    case BandType::kBandPass:
      return {(spec.edges[0] + spec.edges[1]) / 2.0,
              (spec.edges[2] + spec.edges[3]) / 2.0};
    case BandType::kBandStop:
      return {(spec.edges[0] + spec.edges[1]) / 2.0,
              (spec.edges[2] + spec.edges[3]) / 2.0};
  }
  throw Error("butterworth_edges: unknown band type");
}

}  // namespace

std::vector<double> design(const FilterSpec& spec) {
  spec.validate();
  switch (spec.method) {
    case DesignMethod::kParksMcClellan:
      return design_remez(spec.bands(), spec.num_taps).h;
    case DesignMethod::kLeastSquares:
      return design_least_squares(spec.bands(), spec.num_taps);
    case DesignMethod::kButterworthFir:
      return design_butterworth_fir(spec.band, butterworth_edges(spec),
                                    spec.butterworth_order, spec.num_taps);
    case DesignMethod::kKaiserWindow:
      return design_kaiser(spec.band, spec.edges, spec.stopband_atten_db,
                           spec.num_taps);
  }
  throw Error("design: unknown method");
}

}  // namespace mrpf::filter
