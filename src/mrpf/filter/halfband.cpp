#include "mrpf/filter/halfband.hpp"

#include <cmath>

#include "mrpf/common/error.hpp"
#include "mrpf/dsp/window.hpp"

namespace mrpf::filter {

std::vector<double> design_halfband(int num_taps, double atten_db) {
  MRPF_CHECK(num_taps >= 7 && num_taps % 4 == 3,
             "design_halfband: length must be ≥ 7 with N % 4 == 3");
  MRPF_CHECK(atten_db > 0.0, "design_halfband: attenuation must be positive");

  const int m = (num_taps - 1) / 2;
  const std::vector<double> w =
      dsp::window_kaiser(num_taps, dsp::kaiser_beta_for_attenuation(atten_db));

  std::vector<double> h(static_cast<std::size_t>(num_taps), 0.0);
  for (int n = 0; n < num_taps; ++n) {
    const int q = n - m;
    if (q == 0) {
      h[static_cast<std::size_t>(n)] = 0.5;
    } else if (q % 2 != 0) {
      // Ideal fc = 0.5 lowpass: h(q) = sin(πq/2)/(πq), an even function
      // equal to ±1/(π|q|) for odd q (+ when |q| ≡ 1 mod 4).
      const double sign = (std::abs(q) % 4 == 1) ? 1.0 : -1.0;
      h[static_cast<std::size_t>(n)] =
          sign / (M_PI * std::abs(static_cast<double>(q))) *
          w[static_cast<std::size_t>(n)];
    }
    // Even q ≠ 0: structurally zero.
  }
  return h;
}

bool is_halfband(const std::vector<double>& h) {
  if (h.size() < 7 || h.size() % 2 == 0) return false;
  const int m = static_cast<int>(h.size() - 1) / 2;
  for (int n = 0; n < static_cast<int>(h.size()); ++n) {
    const int q = n - m;
    if (q != 0 && q % 2 == 0 && h[static_cast<std::size_t>(n)] != 0.0) {
      return false;
    }
    if (h[static_cast<std::size_t>(n)] !=
        h[h.size() - 1 - static_cast<std::size_t>(n)]) {
      return false;
    }
  }
  return true;
}

}  // namespace mrpf::filter
