#include "mrpf/filter/halfband.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "mrpf/common/error.hpp"
#include "mrpf/dsp/freq_response.hpp"
#include "mrpf/dsp/window.hpp"

namespace mrpf::filter {

std::vector<double> design_halfband(int num_taps, double atten_db) {
  MRPF_CHECK(num_taps >= 3, "design_halfband: length must be at least 3");
  MRPF_CHECK(num_taps % 4 == 3,
             "design_halfband: length must satisfy N % 4 == 3 (the "
             "canonical half-band lengths 3, 7, 11, …)");
  MRPF_CHECK(std::isfinite(atten_db) && atten_db > 0.0,
             "design_halfband: attenuation must be finite and positive");

  const int m = (num_taps - 1) / 2;
  const std::vector<double> w =
      dsp::window_kaiser(num_taps, dsp::kaiser_beta_for_attenuation(atten_db));

  std::vector<double> h(static_cast<std::size_t>(num_taps), 0.0);
  for (int n = 0; n < num_taps; ++n) {
    const int q = n - m;
    if (q == 0) {
      h[static_cast<std::size_t>(n)] = 0.5;
    } else if (q % 2 != 0) {
      // Ideal fc = 0.5 lowpass: h(q) = sin(πq/2)/(πq), an even function
      // equal to ±1/(π|q|) for odd q (+ when |q| ≡ 1 mod 4).
      const double sign = (std::abs(q) % 4 == 1) ? 1.0 : -1.0;
      h[static_cast<std::size_t>(n)] =
          sign / (M_PI * std::abs(static_cast<double>(q))) *
          w[static_cast<std::size_t>(n)];
    }
    // Even q ≠ 0: structurally zero.
  }
  return h;
}

bool is_halfband(const std::vector<double>& h) {
  // Strip matched zero padding first: polyphase utilities pad short
  // filters with zeros (factor > num_taps), and symmetric padding must
  // not change the verdict. Pairs only — unmatched padding breaks the
  // symmetry and fails below anyway.
  std::size_t lo = 0;
  std::size_t hi = h.size();
  while (hi - lo > 2 && h[lo] == 0.0 && h[hi - 1] == 0.0) {
    ++lo;
    --hi;
  }
  const std::size_t n = hi - lo;
  if (n < 3 || n % 2 == 0) return false;
  const int m = static_cast<int>(n - 1) / 2;
  for (int k = 0; k < static_cast<int>(n); ++k) {
    const std::size_t a = lo + static_cast<std::size_t>(k);
    const std::size_t b = hi - 1 - static_cast<std::size_t>(k);
    const int q = k - m;
    if (q != 0 && q % 2 == 0 && h[a] != 0.0) return false;
    if (h[a] != h[b]) return false;
  }
  return true;
}

namespace {

/// Full linear convolution a ⊛ b.
std::vector<double> convolve(const std::vector<double>& a,
                             const std::vector<double>& b) {
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] += a[i] * b[j];
    }
  }
  return out;
}

/// Centre `v` (odd length) inside a length-`n` (odd) zero vector and add
/// it, scaled, into `acc`.
void add_centered(std::vector<double>& acc, const std::vector<double>& v,
                  double scale) {
  const std::size_t off = (acc.size() - v.size()) / 2;
  for (std::size_t i = 0; i < v.size(); ++i) {
    acc[off + i] += scale * v[i];
  }
}

/// Kaiser–Hamming sharpening coefficients for order n1 = 1..4: the odd
/// polynomial P_n(x) = x·Σ_{k<n} (C(2k,k)/4^k)(1−x²)^k expanded in odd
/// powers of x. P_n(±1) = ±1 and the first n−1 derivatives vanish at ±1,
/// which is what compresses the sub-filter ripple to O(ε^n).
const std::vector<double>& sharpening_coefficients(int n1) {
  static const std::vector<double> kTable[4] = {
      {1.0},
      {1.5, -0.5},
      {15.0 / 8.0, -10.0 / 8.0, 3.0 / 8.0},
      {35.0 / 16.0, -35.0 / 16.0, 21.0 / 16.0, -5.0 / 16.0},
  };
  MRPF_CHECK(n1 >= 1 && n1 <= 4,
             "sharpening_coefficients: order must be in 1..4");
  return kTable[n1 - 1];
}

}  // namespace

std::vector<double> compose_halfband(const std::vector<double>& f1,
                                     const std::vector<double>& g) {
  MRPF_CHECK(!f1.empty(), "compose_halfband: empty prototype");
  MRPF_CHECK(is_halfband(g),
             "compose_halfband: sub-filter must be half-band");

  // F2 = 2g − δ: supported on odd offsets only, so every odd convolution
  // power of it is too, and the sum below is structurally half-band.
  std::vector<double> f2 = g;
  for (double& v : f2) v *= 2.0;
  f2[(f2.size() - 1) / 2] -= 1.0;

  const std::size_t n1 = f1.size();
  const std::size_t out_len = (2 * n1 - 1) * (g.size() - 1) + 1;
  std::vector<double> h(out_len, 0.0);
  h[(out_len - 1) / 2] = 0.5;

  std::vector<double> power = f2;  // F2^{*(2i+1)}, built incrementally
  const std::vector<double> f2_sq = convolve(f2, f2);
  for (std::size_t i = 0; i < n1; ++i) {
    if (i > 0) power = convolve(power, f2_sq);
    add_centered(h, power, 0.5 * f1[i]);
  }

  // The odd-offset structure and the symmetry are exact mathematically;
  // make them exact in floating point too so downstream structural
  // consumers (polyphase split, is_halfband) see clean zeros.
  const std::size_t centre = (out_len - 1) / 2;
  for (std::size_t k = 0; k < out_len; ++k) {
    const std::ptrdiff_t q =
        static_cast<std::ptrdiff_t>(k) - static_cast<std::ptrdiff_t>(centre);
    if (q != 0 && q % 2 == 0) h[k] = 0.0;
  }
  for (std::size_t k = 0; k < out_len / 2; ++k) {
    const double avg = 0.5 * (h[k] + h[out_len - 1 - k]);
    h[k] = avg;
    h[out_len - 1 - k] = avg;
  }
  return h;
}

HalfbandCascadeDesign design_halfband_cascade(double fp, double delta) {
  MRPF_CHECK(std::isfinite(fp) && fp > 0.0 && fp < 0.5,
             "design_halfband_cascade: passband edge must lie in (0, 0.5) "
             "— half-band symmetry pins the stopband edge at 1 − fp");
  MRPF_CHECK(std::isfinite(delta) && delta > 0.0 && delta < 0.5,
             "design_halfband_cascade: deviation must lie in (0, 0.5)");

  constexpr int kGrid = 512;
  static const int kSubLengths[] = {7, 11, 15, 19, 23, 27, 31, 39, 47, 55};

  HalfbandCascadeDesign best;
  bool found = false;
  for (int n1 = 1; n1 <= 4; ++n1) {
    // Sharpening compresses sub-filter ripple ε to ~ε^n1, so the
    // sub-filter only needs a 1/n1 share of the dB budget (plus margin
    // for the polynomial's leading constant).
    const double sub_atten =
        std::max(10.0, -20.0 * std::log10(delta) / n1 + 5.0);
    const std::vector<double>& f1 = sharpening_coefficients(n1);
    for (const int n2 : kSubLengths) {
      const std::vector<double> g = design_halfband(n2, sub_atten);
      const std::vector<double> h = compose_halfband(f1, g);

      double pb = 0.0;
      double sb = 0.0;
      for (int i = 0; i <= kGrid; ++i) {
        const double f = fp * static_cast<double>(i) / kGrid;
        pb = std::max(pb, std::abs(dsp::amplitude_response_at(h, f) - 1.0));
        sb = std::max(sb,
                      std::abs(dsp::amplitude_response_at(h, 1.0 - f)));
      }
      if (std::max(pb, sb) > delta) continue;

      int nonzero = 0;
      for (const double v : h) {
        if (v != 0.0) ++nonzero;
      }
      if (!found || nonzero < best.nonzero_taps) {
        best.f1 = f1;
        best.subfilter = g;
        best.h = h;
        best.n1 = n1;
        best.n2 = n2;
        best.passband_deviation = pb;
        best.stopband_deviation = sb;
        best.nonzero_taps = nonzero;
        found = true;
      }
    }
  }
  MRPF_CHECK(found,
             "design_halfband_cascade: no feasible design on the sweep "
             "grid — loosen delta or move fp away from 0.5");
  return best;
}

}  // namespace mrpf::filter
