// Half-band FIR design: cutoff at f = 0.5 makes every even-offset tap
// (except the centre) exactly zero — the workhorse of decimate-by-2
// chains, and a structural gift to multiplierless synthesis (half the
// multiplier bank disappears before any optimizer runs).
//
// Beyond the windowed-sinc designer this module grows the classic
// prototype/sub-filter *cascade* (designHBF lineage): a short half-band
// sub-filter g is pushed through an odd sharpening polynomial
// P(x) = Σ f1[i]·x^{2i+1}, giving H = 0.5 + 0.5·P(2G − 1). Because odd
// convolution powers of an odd-offset kernel stay odd-offset, the
// composition is *structurally* half-band — no floating-point luck
// involved — while P's flatness at ±1 squeezes the sub-filter's ripple
// down by a power of the sharpening order.
#pragma once

#include <vector>

namespace mrpf::filter {

/// Kaiser-windowed half-band low-pass of length `num_taps` (must satisfy
/// num_taps ≥ 3 and num_taps % 4 == 3, the canonical half-band lengths).
/// `atten_db` must be finite and positive. Zero taps are exact (set
/// structurally, not left to floating point).
std::vector<double> design_halfband(int num_taps, double atten_db);

/// True when h has the half-band structure: odd length, symmetric, all
/// even-offset taps from the centre exactly zero (except the centre).
/// Matched zero padding at both ends is ignored first, so half-band
/// branches that polyphase utilities padded with zeros (factor >
/// num_taps) are still recognized. Minimum unpadded length is 3.
bool is_halfband(const std::vector<double>& h);

/// Compose the sharpening prototype f1 with the half-band sub-filter g:
///   h = 0.5·δ + 0.5·Σ_i f1[i] · F2^{*(2i+1)},   F2 = 2g − δ.
/// f1[i] is the coefficient of x^{2i+1} in the odd prototype polynomial;
/// g must satisfy is_halfband. The result is exactly half-band by
/// construction (even offsets are zeroed structurally, symmetry is
/// enforced exactly) with length (2·f1.size() − 1)·(|g| − 1) + 1.
std::vector<double> compose_halfband(const std::vector<double>& f1,
                                     const std::vector<double>& g);

/// One prototype/sub-filter cascade design picked by
/// design_halfband_cascade.
struct HalfbandCascadeDesign {
  std::vector<double> f1;         ///< sharpening coefficients (x, x³, …)
  std::vector<double> subfilter;  ///< the half-band sub-filter g
  std::vector<double> h;          ///< composed half-band filter
  int n1 = 0;                     ///< sharpening order (f1.size())
  int n2 = 0;                     ///< sub-filter length
  double passband_deviation = 0.0;  ///< max |A − 1| on [0, fp]
  double stopband_deviation = 0.0;  ///< max |A| on [1 − fp, 1]
  int nonzero_taps = 0;             ///< multiplier taps of the composed h
};

/// Design a half-band cascade meeting |A − 1| ≤ delta on [0, fp] and
/// |A| ≤ delta on [1 − fp, 1] (frequencies in the repo's f ∈ [0, 1],
/// Nyquist = 1 convention, so the half-band symmetry pins the stopband
/// edge at 1 − fp). Sweeps Kaiser–Hamming sharpening orders 1–4 against
/// a grid of sub-filter lengths, verifies each candidate's response on a
/// dense grid, and returns the feasible design with the fewest nonzero
/// taps. Throws when no candidate meets the spec (loosen delta or fp).
HalfbandCascadeDesign design_halfband_cascade(double fp, double delta);

}  // namespace mrpf::filter
