// Half-band FIR design: cutoff at f = 0.5 makes every even-offset tap
// (except the centre) exactly zero — the workhorse of decimate-by-2
// chains, and a structural gift to multiplierless synthesis (half the
// multiplier bank disappears before any optimizer runs).
#pragma once

#include <vector>

namespace mrpf::filter {

/// Kaiser-windowed half-band low-pass of length `num_taps` (must satisfy
/// num_taps % 4 == 3, the canonical half-band length). Zero taps are
/// exact (set structurally, not left to floating point).
std::vector<double> design_halfband(int num_taps, double atten_db);

/// True when h has the half-band structure: odd length, symmetric, all
/// even-offset taps from the centre exactly zero (except the centre).
bool is_halfband(const std::vector<double>& h);

}  // namespace mrpf::filter
