#include "mrpf/filter/symmetric.hpp"

#include <cmath>

namespace mrpf::filter {

bool is_symmetric(const std::vector<double>& h, double tol) {
  for (std::size_t k = 0; k < h.size() / 2; ++k) {
    if (std::fabs(h[k] - h[h.size() - 1 - k]) > tol) return false;
  }
  return true;
}

bool is_symmetric(const std::vector<i64>& h) {
  for (std::size_t k = 0; k < h.size() / 2; ++k) {
    if (h[k] != h[h.size() - 1 - k]) return false;
  }
  return true;
}

std::vector<double> symmetrize(const std::vector<double>& h) {
  std::vector<double> s = h;
  for (std::size_t k = 0; k < s.size() / 2; ++k) {
    const double avg = (s[k] + s[s.size() - 1 - k]) / 2.0;
    s[k] = avg;
    s[s.size() - 1 - k] = avg;
  }
  return s;
}

}  // namespace mrpf::filter
