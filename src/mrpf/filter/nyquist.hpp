// Nyquist(M) — a.k.a. M-th band — FIR prototypes for M-channel filter
// banks. A Nyquist(M) lowpass h has h[centre] = 1/M and h[centre ± qM] = 0
// for q ≠ 0: exactly one polyphase branch is a pure (scaled) delay, and
// the branch impulse responses sum to a unit impulse. That structure
// gives intersymbol-interference-free interpolation and, paired with the
// synthesis prototype g = M·h, a perfect-DC analysis/synthesis chain —
// the M-channel generalization of the half-band filter (M = 2 recovers
// it). The structural zeros are set exactly, never left to floating
// point, so polyphase splitting and multiplierless synthesis see clean
// zero taps.
#pragma once

#include <vector>

namespace mrpf::filter {

/// An analysis/synthesis prototype pair for an M-channel Nyquist bank.
struct NyquistDesign {
  int factor = 0;                  ///< M, the band count / rate factor
  std::vector<double> analysis;    ///< h: Nyquist(M) lowpass, gain 1 at DC
  std::vector<double> synthesis;   ///< g = M·h: interpolation prototype
};

/// Kaiser-windowed Nyquist(M) lowpass spanning `span` zero crossings per
/// side: length 2·span·factor + 1, taps h[centre ± q] =
/// sin(πq/M)/(πq)·w[q] with the q ≡ 0 (mod M) taps exactly zero and the
/// centre exactly 1/M. Requires factor ≥ 2, span ≥ 1, and a finite
/// positive `atten_db`. factor == 2 yields a half-band analysis filter
/// at half gain (2·h passes is_halfband).
NyquistDesign design_nyquist(int factor, int span, double atten_db);

/// True when h is Nyquist(M): odd length, symmetric, centre tap nonzero,
/// and every tap at offset ±qM (q ≠ 0) exactly zero. Matched zero padding
/// at both ends is ignored, mirroring filter::is_halfband.
bool is_nyquist(const std::vector<double>& h, int factor);

}  // namespace mrpf::filter
