// Unified entry point: design a FilterSpec with its chosen method.
#pragma once

#include <vector>

#include "mrpf/filter/spec.hpp"

namespace mrpf::filter {

/// Dispatches to Remez / least-squares / Butterworth-FIR / Kaiser and
/// returns the impulse response (length spec.num_taps, symmetric).
std::vector<double> design(const FilterSpec& spec);

}  // namespace mrpf::filter
