// Butterworth-derived FIR filters ("BW" in Table 1).
//
// The catalog's BW entries are maximally-flat magnitude filters realized as
// linear-phase FIRs: the analog Butterworth magnitude (with the standard
// LP→BP / LP→BS frequency transformations) is sampled on the DFT grid and
// inverted into a symmetric impulse response (frequency-sampling method,
// optionally smoothed by a window). This trades the IIR phase for exact
// linear phase, which is what a multiplierless parallel FIR needs.
#pragma once

#include <vector>

#include "mrpf/filter/spec.hpp"

namespace mrpf::filter {

/// |H(f)| of an order-n Butterworth prototype mapped onto `band` with the
/// given edges (LP/HP: {fc}; BP/BS: {f1, f2}); f normalized to [0, 1].
double butterworth_magnitude(BandType band, const std::vector<double>& edges,
                             int order, double f);

/// Length-`num_taps` (odd) linear-phase FIR sampling that magnitude.
/// `smooth` applies a Hamming window to damp frequency-sampling ripple.
std::vector<double> design_butterworth_fir(BandType band,
                                           const std::vector<double>& edges,
                                           int order, int num_taps,
                                           bool smooth = true);

}  // namespace mrpf::filter
