// Weighted least-squares linear-phase FIR design (type I).
//
// Minimizes  Σ_bands W_b ∫ (A(f) − D_b)² df  over the cosine-basis
// amplitude A(f) = Σ a_k cos(πfk). The Gram matrix and load vector have
// closed-form band integrals, so no numerical quadrature is involved.
#pragma once

#include <vector>

#include "mrpf/filter/spec.hpp"

namespace mrpf::filter {

/// Length-`num_taps` (odd) impulse response of the LS-optimal filter.
std::vector<double> design_least_squares(const std::vector<Band>& bands,
                                         int num_taps);

}  // namespace mrpf::filter
