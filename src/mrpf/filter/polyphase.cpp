#include "mrpf/filter/polyphase.hpp"

#include <limits>

#include "mrpf/common/error.hpp"

namespace mrpf::filter {

namespace {

template <typename T>
std::vector<std::vector<T>> decompose_impl(const std::vector<T>& h,
                                           int factor) {
  MRPF_CHECK(factor >= 1, "polyphase: factor must be positive");
  MRPF_CHECK(!h.empty(), "polyphase: empty filter");
  std::vector<std::vector<T>> branches(static_cast<std::size_t>(factor));
  for (std::size_t j = 0; j < h.size(); ++j) {
    branches[j % static_cast<std::size_t>(factor)].push_back(h[j]);
  }
  return branches;
}

}  // namespace

std::vector<std::vector<double>> polyphase_decompose(
    const std::vector<double>& h, int factor) {
  return decompose_impl(h, factor);
}

std::vector<std::vector<i64>> polyphase_decompose(const std::vector<i64>& h,
                                                  int factor) {
  return decompose_impl(h, factor);
}

std::vector<i64> decimate_exact(const std::vector<i64>& c, int factor,
                                const std::vector<i64>& x) {
  MRPF_CHECK(factor >= 1, "decimate_exact: factor must be positive");
  MRPF_CHECK(!c.empty(), "decimate_exact: empty filter");
  std::vector<i64> y;
  for (std::size_t n = 0; n < x.size(); n += static_cast<std::size_t>(factor)) {
    i128 acc = 0;
    for (std::size_t j = 0; j < c.size() && j <= n; ++j) {
      acc += static_cast<i128>(c[j]) * x[n - j];
    }
    MRPF_CHECK(acc <= std::numeric_limits<i64>::max() &&
                   acc >= std::numeric_limits<i64>::min(),
               "decimate_exact: accumulator overflow");
    y.push_back(static_cast<i64>(acc));
  }
  return y;
}

std::vector<i64> interpolate_exact(const std::vector<i64>& c, int factor,
                                   const std::vector<i64>& x) {
  MRPF_CHECK(factor >= 1, "interpolate_exact: factor must be positive");
  MRPF_CHECK(!c.empty(), "interpolate_exact: empty filter");
  std::vector<i64> y(x.size() * static_cast<std::size_t>(factor), 0);
  for (std::size_t n = 0; n < y.size(); ++n) {
    i128 acc = 0;
    // Only indices with n − j divisible by L contribute (zero stuffing).
    for (std::size_t j = n % static_cast<std::size_t>(factor);
         j < c.size() && j <= n; j += static_cast<std::size_t>(factor)) {
      acc += static_cast<i128>(c[j]) *
             x[(n - j) / static_cast<std::size_t>(factor)];
    }
    MRPF_CHECK(acc <= std::numeric_limits<i64>::max() &&
                   acc >= std::numeric_limits<i64>::min(),
               "interpolate_exact: accumulator overflow");
    y[n] = static_cast<i64>(acc);
  }
  return y;
}

}  // namespace mrpf::filter
