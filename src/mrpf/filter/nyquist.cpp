#include "mrpf/filter/nyquist.hpp"

#include <cmath>
#include <cstddef>

#include "mrpf/common/error.hpp"
#include "mrpf/dsp/window.hpp"

namespace mrpf::filter {

NyquistDesign design_nyquist(int factor, int span, double atten_db) {
  MRPF_CHECK(factor >= 2, "design_nyquist: factor must be at least 2");
  MRPF_CHECK(span >= 1, "design_nyquist: span must be at least 1");
  MRPF_CHECK(std::isfinite(atten_db) && atten_db > 0.0,
             "design_nyquist: attenuation must be finite and positive");

  const int m = span * factor;  // centre index; length 2m + 1
  const int num_taps = 2 * m + 1;
  const std::vector<double> w =
      dsp::window_kaiser(num_taps, dsp::kaiser_beta_for_attenuation(atten_db));

  NyquistDesign d;
  d.factor = factor;
  d.analysis.assign(static_cast<std::size_t>(num_taps), 0.0);
  for (int n = 0; n < num_taps; ++n) {
    const int q = n - m;
    if (q == 0) {
      d.analysis[static_cast<std::size_t>(n)] =
          1.0 / static_cast<double>(factor);
    } else if (q % factor != 0) {
      // Ideal fc = 1/M lowpass: h(q) = sin(πq/M)/(πq); the q ≡ 0 (mod M)
      // taps sit exactly on the sinc's zero crossings and stay
      // structurally zero.
      const double x = static_cast<double>(q);
      d.analysis[static_cast<std::size_t>(n)] =
          std::sin(M_PI * x / static_cast<double>(factor)) / (M_PI * x) *
          w[static_cast<std::size_t>(n)];
    }
  }

  d.synthesis = d.analysis;
  for (double& v : d.synthesis) v *= static_cast<double>(factor);
  return d;
}

bool is_nyquist(const std::vector<double>& h, int factor) {
  if (factor < 2) return false;
  // Strip matched zero padding, mirroring is_halfband: padded branches
  // from polyphase utilities must not change the verdict.
  std::size_t lo = 0;
  std::size_t hi = h.size();
  while (hi - lo > 2 && h[lo] == 0.0 && h[hi - 1] == 0.0) {
    ++lo;
    --hi;
  }
  const std::size_t n = hi - lo;
  if (n < 3 || n % 2 == 0) return false;
  const int m = static_cast<int>(n - 1) / 2;
  if (h[lo + static_cast<std::size_t>(m)] == 0.0) return false;
  for (int k = 0; k < static_cast<int>(n); ++k) {
    const std::size_t a = lo + static_cast<std::size_t>(k);
    const std::size_t b = hi - 1 - static_cast<std::size_t>(k);
    const int q = k - m;
    if (q != 0 && q % factor == 0 && h[a] != 0.0) return false;
    if (h[a] != h[b]) return false;
  }
  return true;
}

}  // namespace mrpf::filter
