#include "mrpf/filter/butterworth.hpp"

#include <cmath>

#include "mrpf/common/error.hpp"
#include "mrpf/dsp/window.hpp"

namespace mrpf::filter {

namespace {

double lowpass_mag(double omega_ratio, int order) {
  // |H|² = 1 / (1 + Ω^2n)
  return 1.0 / std::sqrt(1.0 + std::pow(omega_ratio, 2 * order));
}

}  // namespace

double butterworth_magnitude(BandType band, const std::vector<double>& edges,
                             int order, double f) {
  MRPF_CHECK(order >= 1, "butterworth: order must be >= 1");
  switch (band) {
    case BandType::kLowPass: {
      MRPF_CHECK(edges.size() == 1, "butterworth LP: need one edge {fc}");
      return lowpass_mag(f / edges[0], order);
    }
    case BandType::kHighPass: {
      MRPF_CHECK(edges.size() == 1, "butterworth HP: need one edge {fc}");
      if (f == 0.0) return 0.0;
      return lowpass_mag(edges[0] / f, order);
    }
    case BandType::kBandPass: {
      MRPF_CHECK(edges.size() == 2 && edges[1] > edges[0],
                 "butterworth BP: need ascending {f1, f2}");
      const double f0sq = edges[0] * edges[1];
      const double bw = edges[1] - edges[0];
      if (f == 0.0) return 0.0;
      // Standard analog LP→BP transform: Ω = (f² − f0²) / (B·f).
      return lowpass_mag(std::fabs((f * f - f0sq) / (bw * f)), order);
    }
    case BandType::kBandStop: {
      MRPF_CHECK(edges.size() == 2 && edges[1] > edges[0],
                 "butterworth BS: need ascending {f1, f2}");
      const double f0sq = edges[0] * edges[1];
      const double bw = edges[1] - edges[0];
      const double num = f * f - f0sq;
      if (num == 0.0) return 0.0;  // center of the notch
      // LP→BS transform: Ω = B·f / (f² − f0²).
      return lowpass_mag(std::fabs(bw * f / num), order);
    }
  }
  throw Error("butterworth_magnitude: unknown band type");
}

std::vector<double> design_butterworth_fir(BandType band,
                                           const std::vector<double>& edges,
                                           int order, int num_taps,
                                           bool smooth) {
  MRPF_CHECK(num_taps >= 3 && num_taps % 2 == 1,
             "butterworth FIR: num_taps must be odd and >= 3");
  const int m = (num_taps - 1) / 2;

  // Frequency sampling on the DFT grid f_j = 2j/N (type-I linear phase):
  // h[n] = (1/N)·[A_0 + 2·Σ_j A_j·cos(2πj(n−m)/N)].
  std::vector<double> a(static_cast<std::size_t>(m) + 1, 0.0);
  for (int j = 0; j <= m; ++j) {
    const double f = 2.0 * static_cast<double>(j) /
                     static_cast<double>(num_taps);
    a[static_cast<std::size_t>(j)] =
        butterworth_magnitude(band, edges, order, std::min(f, 1.0));
  }

  std::vector<double> h(static_cast<std::size_t>(num_taps), 0.0);
  for (int n = 0; n < num_taps; ++n) {
    double acc = a[0];
    for (int j = 1; j <= m; ++j) {
      acc += 2.0 * a[static_cast<std::size_t>(j)] *
             std::cos(2.0 * M_PI * static_cast<double>(j) *
                      static_cast<double>(n - m) /
                      static_cast<double>(num_taps));
    }
    h[static_cast<std::size_t>(n)] = acc / static_cast<double>(num_taps);
  }

  if (smooth) {
    const std::vector<double> w = dsp::window_hamming(num_taps);
    for (std::size_t i = 0; i < h.size(); ++i) h[i] *= w[i];
  }
  return h;
}

}  // namespace mrpf::filter
