// Symmetry utilities: the paper's filters are all linear-phase symmetric
// and implemented in *folded* transposed direct form, so only the unique
// half of the coefficient vector feeds the multiplier-block optimizers.
#pragma once

#include <vector>

#include "mrpf/common/bits.hpp"

namespace mrpf::filter {

/// True when h[k] == h[N-1-k] within tol for all k.
bool is_symmetric(const std::vector<double>& h, double tol = 1e-12);
bool is_symmetric(const std::vector<i64>& h);

/// Enforces exact symmetry by averaging mirrored taps.
std::vector<double> symmetrize(const std::vector<double>& h);

/// Unique half of a symmetric filter: first ceil(N/2) taps.
template <typename T>
std::vector<T> folded_half(const std::vector<T>& h) {
  return std::vector<T>(h.begin(),
                        h.begin() + static_cast<std::ptrdiff_t>(
                                        (h.size() + 1) / 2));
}

}  // namespace mrpf::filter
