#include "mrpf/filter/catalog.hpp"

#include <mutex>

#include "mrpf/common/error.hpp"
#include "mrpf/filter/design.hpp"

namespace mrpf::filter {

namespace {

FilterSpec make(const char* name, DesignMethod m, BandType b,
                std::vector<double> edges, double rp, double rs, int taps,
                int bw_order = 5) {
  FilterSpec s;
  s.name = name;
  s.method = m;
  s.band = b;
  s.edges = std::move(edges);
  s.passband_ripple_db = rp;
  s.stopband_atten_db = rs;
  s.num_taps = taps;
  s.butterworth_order = bw_order;
  return s;
}

std::vector<FilterSpec> build_catalog() {
  using M = DesignMethod;
  using B = BandType;
  // Method/band rows follow the paper's Table 1 exactly:
  //   BW PM LS BW PM LS PM PM LS LS PM LS
  //   LP LP LP LP BS BS BS LP BS LP BP BP
  return {
      make("Ex1", M::kButterworthFir, B::kLowPass, {0.15, 0.50}, 1.0, 20.0,
           17, 12),
      make("Ex2", M::kParksMcClellan, B::kLowPass, {0.20, 0.35}, 1.0, 45.0,
           21),
      make("Ex3", M::kLeastSquares, B::kLowPass, {0.15, 0.28}, 0.5, 50.0,
           27),
      make("Ex4", M::kButterworthFir, B::kLowPass, {0.20, 0.40}, 1.0, 22.0,
           33, 16),
      make("Ex5", M::kParksMcClellan, B::kBandStop,
           {0.18, 0.25, 0.35, 0.42}, 0.5, 45.0, 41),
      make("Ex6", M::kLeastSquares, B::kBandStop, {0.20, 0.28, 0.42, 0.50},
           0.5, 50.0, 45),
      make("Ex7", M::kParksMcClellan, B::kBandStop,
           {0.15, 0.22, 0.38, 0.45}, 0.5, 50.0, 53),
      make("Ex8", M::kParksMcClellan, B::kLowPass, {0.10, 0.16}, 0.3, 55.0,
           61),
      make("Ex9", M::kLeastSquares, B::kBandStop, {0.22, 0.28, 0.40, 0.46},
           0.3, 55.0, 67),
      make("Ex10", M::kLeastSquares, B::kLowPass, {0.08, 0.13}, 0.3, 55.0,
           75),
      make("Ex11", M::kParksMcClellan, B::kBandPass,
           {0.22, 0.30, 0.40, 0.48}, 0.3, 55.0, 85),
      make("Ex12", M::kLeastSquares, B::kBandPass,
           {0.16, 0.25, 0.42, 0.50}, 0.3, 55.0, 101),
  };
}

const std::vector<FilterSpec>& catalog_impl() {
  static const std::vector<FilterSpec> specs = build_catalog();
  return specs;
}

}  // namespace

int catalog_size() { return static_cast<int>(catalog_impl().size()); }

const std::vector<FilterSpec>& catalog() { return catalog_impl(); }

const FilterSpec& catalog_spec(int i) {
  MRPF_CHECK(i >= 0 && i < catalog_size(), "catalog_spec: index out of range");
  return catalog_impl()[static_cast<std::size_t>(i)];
}

const std::vector<double>& catalog_coefficients(int i) {
  MRPF_CHECK(i >= 0 && i < catalog_size(),
             "catalog_coefficients: index out of range");
  static std::vector<std::vector<double>> cache(
      static_cast<std::size_t>(catalog_size()));
  static std::mutex mu;
  std::scoped_lock lock(mu);
  auto& slot = cache[static_cast<std::size_t>(i)];
  if (slot.empty()) slot = design(catalog_spec(i));
  return slot;
}

}  // namespace mrpf::filter
