#include "mrpf/filter/iir.hpp"

#include <cmath>

#include "mrpf/common/error.hpp"

namespace mrpf::filter {

namespace {

using cplx = std::complex<double>;

/// Multiplies polynomial p (ascending powers of z^-1) by
/// (c0 + c1 z^-1 + c2 z^-2).
std::vector<double> poly_mul3(const std::vector<double>& p, double c0,
                              double c1, double c2) {
  std::vector<double> out(p.size() + 2, 0.0);
  for (std::size_t i = 0; i < p.size(); ++i) {
    out[i] += p[i] * c0;
    out[i + 1] += p[i] * c1;
    out[i + 2] += p[i] * c2;
  }
  // Trim the always-zero tail of first-order factors.
  while (out.size() > 1 && out.back() == 0.0) out.pop_back();
  return out;
}

}  // namespace

IirDesign::DirectForm IirDesign::direct_form() const {
  DirectForm df;
  df.b = {1.0};
  df.a = {1.0};
  for (const Biquad& s : sections) {
    df.b = poly_mul3(df.b, s.b0, s.b1, s.b2);
    df.a = poly_mul3(df.a, 1.0, s.a1, s.a2);
  }
  // Pad to equal length (direct form expects matched orders).
  while (df.b.size() < df.a.size()) df.b.push_back(0.0);
  while (df.a.size() < df.b.size()) df.a.push_back(0.0);
  return df;
}

std::complex<double> IirDesign::response_at(double f) const {
  const double w = M_PI * f;
  const cplx zi = std::exp(cplx(0.0, -w));  // z^-1
  cplx h(1.0, 0.0);
  for (const Biquad& s : sections) {
    h *= (s.b0 + s.b1 * zi + s.b2 * zi * zi) /
         (1.0 + s.a1 * zi + s.a2 * zi * zi);
  }
  return h;
}

IirDesign design_butterworth_iir(BandType band, double fc, int order) {
  MRPF_CHECK(band == BandType::kLowPass || band == BandType::kHighPass,
             "design_butterworth_iir: LP/HP only (cascade two for BP/BS)");
  MRPF_CHECK(fc > 0.0 && fc < 1.0, "design_butterworth_iir: fc outside (0,1)");
  MRPF_CHECK(order >= 1 && order <= 16,
             "design_butterworth_iir: order out of range [1,16]");

  // Pre-warped analog cutoff (bilinear transform with T = 2).
  const double wc = std::tan(M_PI * fc / 2.0);
  const bool highpass = band == BandType::kHighPass;

  IirDesign design;
  // Analog Butterworth poles on the left half of the |s| = wc circle:
  // s_k = wc·exp(jθ_k), θ_k = π(2k + n + 1)/(2n). For HP the analog
  // prototype is transformed s → wc²/s, equivalent to mapping each pole
  // p → wc²/p and moving the zeros from s=∞ to s=0 (z = +1 digitally).
  for (int k = 0; k < order / 2; ++k) {
    const double theta = M_PI *
                         (2.0 * static_cast<double>(k) + 1.0 +
                          static_cast<double>(order)) /
                         (2.0 * static_cast<double>(order));
    cplx p = wc * std::exp(cplx(0.0, theta));
    if (highpass) p = (wc * wc) / p;
    // Bilinear: z_pole = (1 + p) / (1 − p).
    const cplx zp = (1.0 + p) / (1.0 - p);
    Biquad s;
    s.a1 = -2.0 * zp.real();
    s.a2 = std::norm(zp);
    // Zeros: z = −1 (LP) or z = +1 (HP), double.
    const double z0 = highpass ? 1.0 : -1.0;
    s.b0 = 1.0;
    s.b1 = -2.0 * z0;
    s.b2 = 1.0;
    // Normalize: unit gain at DC (LP) / Nyquist (HP), where z^-1 = ±1.
    const double zi = highpass ? -1.0 : 1.0;
    const double num = s.b0 + s.b1 * zi + s.b2 * zi * zi;
    const double den = 1.0 + s.a1 * zi + s.a2 * zi * zi;
    const double g = den / num;
    s.b0 *= g;
    s.b1 *= g;
    s.b2 *= g;
    design.sections.push_back(s);
  }
  if (order % 2 == 1) {
    // Real pole at s = −wc (LP) or s = −wc (HP prototype maps to itself).
    double p = -wc;
    if (highpass) p = (wc * wc) / p;
    const double zp = (1.0 + p) / (1.0 - p);
    Biquad s;
    s.a1 = -zp;
    const double z0 = highpass ? 1.0 : -1.0;
    s.b0 = 1.0;
    s.b1 = -z0;
    const double zi = highpass ? -1.0 : 1.0;
    const double g = (1.0 + s.a1 * zi) / (s.b0 + s.b1 * zi);
    s.b0 *= g;
    s.b1 *= g;
    design.sections.push_back(s);
  }
  return design;
}

std::vector<double> iir_filter(const IirDesign& design,
                               const std::vector<double>& x) {
  std::vector<double> data = x;
  for (const Biquad& s : design.sections) {
    double w1 = 0.0;
    double w2 = 0.0;  // transposed direct form II state
    for (double& v : data) {
      const double in = v;
      const double out = s.b0 * in + w1;
      w1 = s.b1 * in - s.a1 * out + w2;
      w2 = s.b2 * in - s.a2 * out;
      v = out;
    }
  }
  return data;
}

std::vector<double> iir_filter_direct(const std::vector<double>& b,
                                      const std::vector<double>& a,
                                      const std::vector<double>& x) {
  MRPF_CHECK(!a.empty() && a[0] == 1.0,
             "iir_filter_direct: denominator must be monic");
  std::vector<double> y(x.size(), 0.0);
  for (std::size_t n = 0; n < x.size(); ++n) {
    double acc = 0.0;
    for (std::size_t k = 0; k < b.size() && k <= n; ++k) {
      acc += b[k] * x[n - k];
    }
    for (std::size_t k = 1; k < a.size() && k <= n; ++k) {
      acc -= a[k] * y[n - k];
    }
    y[n] = acc;
  }
  return y;
}

}  // namespace mrpf::filter
