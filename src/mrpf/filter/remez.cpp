#include "mrpf/filter/remez.hpp"

#include <algorithm>
#include <cmath>

#include "mrpf/common/error.hpp"

namespace mrpf::filter {

namespace {

struct GridPoint {
  double f = 0.0;
  double desired = 0.0;
  double weight = 1.0;
};

struct Grid {
  std::vector<GridPoint> pts;
  std::vector<std::pair<int, int>> segments;  // [first, last] per band
};

Grid build_grid(const std::vector<Band>& bands, int r, int density) {
  double total_width = 0.0;
  for (const Band& b : bands) {
    MRPF_CHECK(b.f_hi >= b.f_lo && b.f_lo >= 0.0 && b.f_hi <= 1.0,
               "remez: malformed band");
    MRPF_CHECK(b.weight > 0.0, "remez: non-positive band weight");
    total_width += b.f_hi - b.f_lo;
  }
  MRPF_CHECK(total_width > 0.0, "remez: zero-width band union");

  const int target_points = std::max(density * r, 2 * r + 8);
  const double step = total_width / static_cast<double>(target_points);

  Grid g;
  for (const Band& b : bands) {
    const int first = static_cast<int>(g.pts.size());
    const double width = b.f_hi - b.f_lo;
    const int n = std::max(2, static_cast<int>(std::ceil(width / step)) + 1);
    for (int i = 0; i < n; ++i) {
      const double t = static_cast<double>(i) / static_cast<double>(n - 1);
      g.pts.push_back({b.f_lo + t * width, b.desired, b.weight});
    }
    g.segments.emplace_back(first, static_cast<int>(g.pts.size()) - 1);
  }
  return g;
}

/// 1 / Π_{j≠i} (x_i − x_j), computed via log magnitudes for stability.
std::vector<double> barycentric_gammas(const std::vector<double>& x) {
  const std::size_t n = x.size();
  std::vector<double> gamma(n);
  for (std::size_t i = 0; i < n; ++i) {
    double log_mag = 0.0;
    double sign = 1.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double d = x[i] - x[j];
      MRPF_CHECK(d != 0.0, "remez: coincident extremal abscissae");
      log_mag -= std::log(std::fabs(d));
      if (d < 0.0) sign = -sign;
    }
    gamma[i] = sign * std::exp(log_mag);
  }
  return gamma;
}

/// Barycentric interpolation through (x_i, c_i) with weights beta_i.
double interpolate(const std::vector<double>& x, const std::vector<double>& c,
                   const std::vector<double>& beta, double xq) {
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = xq - x[i];
    if (std::fabs(d) < 1e-14) return c[i];
    const double t = beta[i] / d;
    num += t * c[i];
    den += t;
  }
  return num / den;
}

}  // namespace

RemezResult design_remez(const std::vector<Band>& bands, int num_taps,
                         const RemezOptions& options) {
  MRPF_CHECK(num_taps >= 3, "remez: num_taps must be >= 3");
  MRPF_CHECK(!bands.empty(), "remez: no bands");
  MRPF_CHECK(options.grid_density >= 4, "remez: grid density too small");

  // Type I (odd length): A(f) = Σ a_k cos(πfk). Type II (even length):
  // A(f) = cos(πf/2)·P(f) with the same cosine form for P — run the
  // exchange on D/q and W·q with q(f) = cos(πf/2), keeping the grid away
  // from f = 1 where q vanishes (A(1) ≡ 0 structurally).
  const bool type2 = (num_taps % 2 == 0);
  const int r = type2 ? num_taps / 2 : (num_taps - 1) / 2 + 1;

  std::vector<Band> work_bands = bands;
  if (type2) {
    constexpr double kNyquistGuard = 1.0 - 2e-3;
    for (Band& b : work_bands) {
      if (b.f_hi > kNyquistGuard) {
        MRPF_CHECK(b.desired < 0.5,
                   "remez: even length (type II) forces a Nyquist zero — "
                   "cannot pass a band touching f = 1");
        b.f_hi = kNyquistGuard;
        b.f_lo = std::min(b.f_lo, b.f_hi);
      }
    }
  }

  Grid grid = build_grid(work_bands, r, options.grid_density);
  if (type2) {
    for (GridPoint& p : grid.pts) {
      const double q = std::cos(M_PI * p.f / 2.0);
      p.desired /= q;
      p.weight *= q;
    }
  }
  const int g = static_cast<int>(grid.pts.size());
  MRPF_CHECK(g >= r + 1, "remez: grid smaller than extremal set");

  // Initial extremal set: r+1 indices spread uniformly over the grid.
  std::vector<int> ext(static_cast<std::size_t>(r) + 1);
  for (int i = 0; i <= r; ++i) {
    ext[static_cast<std::size_t>(i)] =
        static_cast<int>(static_cast<double>(i) * (g - 1) / r);
  }

  RemezResult result;
  std::vector<double> error(static_cast<std::size_t>(g), 0.0);
  std::vector<double> xe, ce, beta;
  double delta = 0.0;

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    result.iterations = iter;

    // --- Compute delta on the current extremal set. ---
    xe.assign(ext.size(), 0.0);
    for (std::size_t i = 0; i < ext.size(); ++i) {
      xe[i] = std::cos(M_PI * grid.pts[static_cast<std::size_t>(ext[i])].f);
    }
    const std::vector<double> gamma = barycentric_gammas(xe);
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < ext.size(); ++i) {
      const GridPoint& p = grid.pts[static_cast<std::size_t>(ext[i])];
      num += gamma[i] * p.desired;
      den += (i % 2 == 0 ? 1.0 : -1.0) * gamma[i] / p.weight;
    }
    MRPF_CHECK(std::fabs(den) > 0.0, "remez: degenerate extremal set");
    delta = num / den;

    // --- Interpolate A(f) through the first r extremal points. ---
    std::vector<double> xr(xe.begin(), xe.begin() + r);
    beta = barycentric_gammas(xr);
    ce.assign(static_cast<std::size_t>(r), 0.0);
    for (int i = 0; i < r; ++i) {
      const GridPoint& p = grid.pts[static_cast<std::size_t>(ext[static_cast<std::size_t>(i)])];
      ce[static_cast<std::size_t>(i)] =
          p.desired - (i % 2 == 0 ? 1.0 : -1.0) * delta / p.weight;
    }
    xe = std::move(xr);

    // --- Weighted error on the whole grid. ---
    double max_err = 0.0;
    for (int i = 0; i < g; ++i) {
      const GridPoint& p = grid.pts[static_cast<std::size_t>(i)];
      const double a = interpolate(xe, ce, beta, std::cos(M_PI * p.f));
      error[static_cast<std::size_t>(i)] = p.weight * (a - p.desired);
      max_err = std::max(max_err, std::fabs(error[static_cast<std::size_t>(i)]));
    }

    // --- Converged? ---
    const double dev = (max_err - std::fabs(delta)) /
                       std::max(std::fabs(delta), 1e-15);
    if (dev < options.tolerance) {
      result.converged = true;
      break;
    }

    // --- Multiple exchange: pick new alternating extrema. ---
    // Band edges are always candidates: the Chebyshev optimum pins
    // extrema there, and dropping them starves the alternation set.
    std::vector<int> cand;
    for (const auto& [s, e] : grid.segments) {
      for (int i = s; i <= e; ++i) {
        const double ei = std::fabs(error[static_cast<std::size_t>(i)]);
        const bool left_ok = (i == s) ||
            ei >= std::fabs(error[static_cast<std::size_t>(i) - 1]);
        const bool right_ok = (i == e) ||
            ei > std::fabs(error[static_cast<std::size_t>(i) + 1]);
        const bool is_edge = (i == s || i == e);
        if (((left_ok && right_ok) || is_edge) && ei > 0.0) {
          cand.push_back(i);
        }
      }
    }
    // Enforce sign alternation: among same-sign neighbours keep the larger.
    std::vector<int> alt;
    for (const int i : cand) {
      if (!alt.empty() &&
          std::signbit(error[static_cast<std::size_t>(alt.back())]) ==
              std::signbit(error[static_cast<std::size_t>(i)])) {
        if (std::fabs(error[static_cast<std::size_t>(i)]) >
            std::fabs(error[static_cast<std::size_t>(alt.back())])) {
          alt.back() = i;
        }
      } else {
        alt.push_back(i);
      }
    }
    if (static_cast<int>(alt.size()) < r + 1) {
      // Not enough alternations found — the current solution is already
      // essentially optimal on this grid; stop with the best iterate.
      result.converged = dev < 1e-3;
      break;
    }
    // Trim to exactly r+1 by dropping the weaker endpoint repeatedly.
    while (static_cast<int>(alt.size()) > r + 1) {
      if (std::fabs(error[static_cast<std::size_t>(alt.front())]) <
          std::fabs(error[static_cast<std::size_t>(alt.back())])) {
        alt.erase(alt.begin());
      } else {
        alt.pop_back();
      }
    }
    if (alt == ext) {
      result.converged = true;
      break;
    }
    ext = std::move(alt);
  }

  // --- Impulse response from A(f) sampled at f_j = 2j/N (A = q·P; the
  // type-II Nyquist sample is the structural zero and drops out). ---
  const int j_max = type2 ? num_taps / 2 - 1 : (num_taps - 1) / 2;
  std::vector<double> a(static_cast<std::size_t>(j_max) + 1, 0.0);
  for (int j = 0; j <= j_max; ++j) {
    const double f = 2.0 * static_cast<double>(j) /
                     static_cast<double>(num_taps);
    const double q = type2 ? std::cos(M_PI * f / 2.0) : 1.0;
    a[static_cast<std::size_t>(j)] =
        q * interpolate(xe, ce, beta, std::cos(M_PI * f));
  }
  const double center = static_cast<double>(num_taps - 1) / 2.0;
  result.h.assign(static_cast<std::size_t>(num_taps), 0.0);
  for (int n = 0; n < num_taps; ++n) {
    double acc = a[0];
    for (int j = 1; j <= j_max; ++j) {
      acc += 2.0 * a[static_cast<std::size_t>(j)] *
             std::cos(2.0 * M_PI * static_cast<double>(j) *
                      (static_cast<double>(n) - center) /
                      static_cast<double>(num_taps));
    }
    result.h[static_cast<std::size_t>(n)] =
        acc / static_cast<double>(num_taps);
  }
  result.delta = std::fabs(delta);
  return result;
}

}  // namespace mrpf::filter
