// The 12-filter example catalog of Table 1.
//
// The paper's method row (BW PM LS BW PM LS PM PM LS LS PM LS) and band
// row (LP LP LP LP BS BS BS LP BS LP BP BP) are reproduced exactly; the
// numeric band edges / ripples are unreadable in the available scan, so
// this catalog substitutes concrete specs with orders spanning ~17–125
// taps (see DESIGN.md, "Substitutions"). All filters are symmetric
// (linear phase) and evaluated folded.
#pragma once

#include <vector>

#include "mrpf/filter/spec.hpp"

namespace mrpf::filter {

/// Number of catalog entries (12, as in Table 1).
int catalog_size();

/// Spec of catalog entry i ∈ [0, catalog_size()).
const FilterSpec& catalog_spec(int i);

/// Designed impulse response of catalog entry i (deterministic; results
/// are cached internally because the benches sweep the catalog repeatedly).
const std::vector<double>& catalog_coefficients(int i);

/// All specs, in order.
const std::vector<FilterSpec>& catalog();

}  // namespace mrpf::filter
