// Parks–McClellan optimal equiripple FIR design via the Remez exchange
// algorithm. Odd lengths give type-I filters (A(f) = Σ a_k·cos(πfk),
// r = (N+1)/2 basis terms); even lengths give type-II filters
// (A(f) = cos(πf/2)·P(f), r = N/2, with a structural zero at Nyquist —
// so type II cannot realize bands that pass f = 1). In both cases the
// exchange finds the unique amplitude minimizing max W·|A − D| over the
// band union, characterized by r+1 alternations (Chebyshev).
#pragma once

#include <vector>

#include "mrpf/filter/spec.hpp"

namespace mrpf::filter {

struct RemezOptions {
  int grid_density = 16;  // grid points per basis function
  int max_iterations = 64;
  double tolerance = 1e-7;  // relative convergence of the ripple δ
};

struct RemezResult {
  std::vector<double> h;       // impulse response, length num_taps
  double delta = 0.0;          // final weighted ripple magnitude
  int iterations = 0;
  bool converged = false;
};

/// Designs a length-`num_taps` linear-phase filter over `bands`
/// (odd → type I, even → type II).
/// Throws mrpf::Error on invalid inputs; a non-converged exchange still
/// returns the best iterate with converged == false.
RemezResult design_remez(const std::vector<Band>& bands, int num_taps,
                         const RemezOptions& options = {});

}  // namespace mrpf::filter
