#include "mrpf/number/repr.hpp"

#include "mrpf/common/error.hpp"
#include "mrpf/number/csd.hpp"

namespace mrpf::number {

SignedDigitVector to_digits(i64 v, NumberRep rep) {
  switch (rep) {
    case NumberRep::kSignMagnitude:
      return to_sign_magnitude(v);
    case NumberRep::kCsd:
    case NumberRep::kSpt:
      return to_csd(v);
  }
  throw Error("to_digits: unknown representation");
}

int nonzero_digits(i64 v, NumberRep rep) {
  switch (rep) {
    case NumberRep::kSignMagnitude:
      return popcount_abs(v);
    case NumberRep::kCsd:
    case NumberRep::kSpt:
      return csd_weight(v);
  }
  throw Error("nonzero_digits: unknown representation");
}

int multiplier_adders(i64 v, NumberRep rep) {
  const int nz = nonzero_digits(v, rep);
  return nz > 1 ? nz - 1 : 0;
}

std::string to_string(NumberRep rep) {
  switch (rep) {
    case NumberRep::kSignMagnitude:
      return "SM";
    case NumberRep::kCsd:
      return "CSD";
    case NumberRep::kSpt:
      return "SPT";
  }
  return "?";
}

}  // namespace mrpf::number
