#include "mrpf/number/msd.hpp"

#include <functional>

#include "mrpf/common/error.hpp"
#include "mrpf/number/csd.hpp"

namespace mrpf::number {

std::vector<SignedDigitVector> enumerate_msd(i64 v, int max_degree,
                                             std::size_t max_results) {
  MRPF_CHECK(max_degree >= 0 && max_degree <= 60, "max_degree out of range");
  const int budget = csd_weight(v);
  std::vector<SignedDigitVector> results;
  std::vector<SignedDigit> digits(static_cast<std::size_t>(max_degree) + 1, 0);

  // Depth-first over digit positions LSB→MSB. At position k the remaining
  // value must be divisible by 2^k; choosing digit d leaves (rest - d·2^k).
  // Prune on nonzero budget and on magnitude reachability:
  // |rest| ≤ budget_left · 2^(max_degree+1) is a loose but safe bound.
  std::function<void(int, i64, int)> rec = [&](int k, i64 rest, int used) {
    if (results.size() >= max_results) return;
    if (rest == 0) {
      if (used == budget) {
        SignedDigitVector sv(digits);
        sv.trim();
        results.push_back(std::move(sv));
      }
      return;
    }
    if (k > max_degree || used >= budget) return;
    // Remaining digits can contribute at most (2^(max_degree+1) - 2^k).
    const i64 max_reach = (i64{1} << (max_degree + 1)) - (i64{1} << k);
    if (rest > max_reach || rest < -max_reach) return;
    for (const SignedDigit d : {SignedDigit{0}, SignedDigit{1},
                                SignedDigit{-1}}) {
      if ((rest & 1) != 0 && d == 0) continue;  // parity forces nonzero
      if ((rest & 1) == 0 && d != 0) continue;  // parity forces zero
      digits[static_cast<std::size_t>(k)] = d;
      rec(k + 1, (rest - d) / 2, used + (d != 0));
      digits[static_cast<std::size_t>(k)] = 0;
    }
  };
  rec(0, v, 0);
  return results;
}

}  // namespace mrpf::number
