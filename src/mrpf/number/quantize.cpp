#include "mrpf/number/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "mrpf/common/error.hpp"

namespace mrpf::number {

namespace {

double max_abs(const std::vector<double>& h) {
  double m = 0.0;
  for (const double v : h) m = std::max(m, std::fabs(v));
  return m;
}

void check_input(const std::vector<double>& h, int wordlength) {
  MRPF_CHECK(!h.empty(), "quantize: empty coefficient vector");
  MRPF_CHECK(wordlength >= 2 && wordlength <= 24,
             "quantize: wordlength out of supported range [2,24]");
  MRPF_CHECK(max_abs(h) > 0.0, "quantize: all-zero coefficient vector");
  for (const double v : h) {
    MRPF_CHECK(std::isfinite(v), "quantize: non-finite coefficient");
  }
}

/// Largest supported per-coefficient scaling shift (see quantize.hpp):
/// beyond this the alignment shift would not fit shift-add hardware (or
/// i64 intermediate values) anyway.
constexpr int kMaxScaleShift = 62;

i64 round_clamped(double x, i64 limit) {
  const double r = std::nearbyint(x);
  return std::clamp(static_cast<i64>(r), -limit, limit);
}

}  // namespace

std::vector<i64> QuantizedCoefficients::values() const {
  std::vector<i64> v;
  v.reserve(coeffs.size());
  for (const QuantizedCoeff& c : coeffs) v.push_back(c.value);
  return v;
}

double QuantizedCoefficients::realized(std::size_t i) const {
  MRPF_CHECK(i < coeffs.size(), "realized: index out of range");
  return static_cast<double>(coeffs[i].value) *
         std::ldexp(global_scale, -coeffs[i].scale_log2);
}

double QuantizedCoefficients::max_abs_error(
    const std::vector<double>& original) const {
  MRPF_CHECK(original.size() == coeffs.size(),
             "max_abs_error: size mismatch");
  double e = 0.0;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    e = std::max(e, std::fabs(realized(i) - original[i]));
  }
  return e;
}

QuantizedCoefficients quantize_uniform(const std::vector<double>& h,
                                       int wordlength) {
  check_input(h, wordlength);
  const i64 limit = (i64{1} << (wordlength - 1)) - 1;
  const double scale = static_cast<double>(limit) / max_abs(h);

  QuantizedCoefficients out;
  out.wordlength = wordlength;
  out.global_scale = 1.0 / scale;
  out.coeffs.reserve(h.size());
  for (const double v : h) {
    out.coeffs.push_back({round_clamped(v * scale, limit), 0});
  }
  return out;
}

QuantizedCoefficients quantize_maximal(const std::vector<double>& h,
                                       int wordlength) {
  check_input(h, wordlength);
  const i64 limit = (i64{1} << (wordlength - 1)) - 1;
  const double half = static_cast<double>(i64{1} << (wordlength - 2));
  const double scale = static_cast<double>(limit) / max_abs(h);

  QuantizedCoefficients out;
  out.wordlength = wordlength;
  out.global_scale = 1.0 / scale;
  out.coeffs.reserve(h.size());
  for (const double v : h) {
    if (v == 0.0) {
      out.coeffs.push_back({0, 0});
      continue;
    }
    // Closed form for the minimal k ≥ 0 with |v|·scale·2^k ∈
    // [2^(W-2), 2^(W-1)): write |v|·scale = m·2^e with m ∈ [1, 2); then
    // k = (W-2) − e lands m·2^(W-2) exactly in the target octave. ldexp is
    // exact (power-of-two scaling), so no iterative-doubling drift.
    const double mag = std::fabs(v) * scale;
    int k = 0;
    if (mag < half) {
      // mag > 0 by construction, but the |v|·scale product can underflow
      // to zero for extreme ratios; ilogb(0) is undefined-ish (FP_ILOGB0),
      // so route that straight to the cap.
      k = mag > 0.0 ? (wordlength - 2) - std::ilogb(mag) : kMaxScaleShift + 1;
    }
    if (k > kMaxScaleShift) {
      // Cap: a coefficient more than ~2^62 below the bank maximum cannot
      // be brought to full scale within the supported shift budget. It
      // contributes nothing representable at this wordlength, so it
      // quantizes to an explicit zero (scale 0) instead of carrying a
      // huge, meaningless alignment shift.
      out.coeffs.push_back({0, 0});
      continue;
    }
    const i64 value = round_clamped(v * scale * std::ldexp(1.0, k), limit);
    if (value == 0) {
      out.coeffs.push_back({0, 0});
      continue;
    }
    out.coeffs.push_back({value, k});
  }
  return out;
}

}  // namespace mrpf::number
