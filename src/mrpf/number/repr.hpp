// Number-representation abstraction used for cost accounting.
//
// The paper evaluates three representations: signed powers of two (SPT,
// realized here by CSD which achieves the minimal SPT term count),
// canonical signed digit (CSD) proper, and sign-magnitude (SM). The cost
// of multiplying the common input by a constant c is the number of nonzero
// digits of c in the chosen representation; the adder count of that
// multiplier is (nonzero digits - 1).
#pragma once

#include <string>

#include "mrpf/common/bits.hpp"
#include "mrpf/number/digits.hpp"

namespace mrpf::number {

enum class NumberRep {
  kSignMagnitude,  // plain binary magnitude + sign
  kCsd,            // canonical signed digit
  kSpt,            // minimal signed-powers-of-two (same weight as CSD)
};

/// Digit expansion of v under `rep`.
SignedDigitVector to_digits(i64 v, NumberRep rep);

/// Nonzero-digit count of v under `rep` (0 for v == 0).
int nonzero_digits(i64 v, NumberRep rep);

/// Adders needed by a shift-add multiplier for constant v:
/// max(0, nonzero_digits - 1).
int multiplier_adders(i64 v, NumberRep rep);

/// "SM" / "CSD" / "SPT".
std::string to_string(NumberRep rep);

}  // namespace mrpf::number
