// Signed-digit vectors: the shared currency of the number module.
//
// A SignedDigitVector holds digits d[k] ∈ {-1, 0, +1}, least-significant
// first, representing the integer  Σ_k d[k] · 2^k.  Canonical signed digit
// (CSD), plain binary / sign-magnitude, and minimal-signed-digit (MSD)
// representations all use this container.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mrpf/common/bits.hpp"

namespace mrpf::number {

/// One digit of a radix-2 signed-digit number: -1, 0 or +1.
using SignedDigit = std::int8_t;

/// Little-endian (LSB first) vector of signed digits.
class SignedDigitVector {
 public:
  SignedDigitVector() = default;
  explicit SignedDigitVector(std::vector<SignedDigit> digits);

  /// Integer value Σ d[k]·2^k. Throws if the value overflows int64.
  i64 value() const;

  /// Number of nonzero digits (the adder-array cost of a multiplier built
  /// from this representation).
  int nonzero_count() const;

  /// Index of the highest nonzero digit, or -1 when the value is zero.
  int degree() const;

  /// True when no two adjacent digits are both nonzero (the CSD property).
  bool is_canonical() const;

  /// Drops high-order zero digits.
  void trim();

  /// Human-readable MSB-first string, e.g. "+0-0+" for 13... documentation
  /// and debugging aid ('+', '-', '0').
  std::string to_string() const;

  std::size_t size() const { return digits_.size(); }
  bool empty() const { return digits_.empty(); }
  SignedDigit operator[](std::size_t k) const { return digits_[k]; }
  const std::vector<SignedDigit>& digits() const { return digits_; }

  bool operator==(const SignedDigitVector&) const = default;

 private:
  std::vector<SignedDigit> digits_;
};

/// Plain binary expansion of |v| with all digits carrying sign(v):
/// the sign-magnitude (SM) representation. nonzero_count == popcount(|v|).
SignedDigitVector to_sign_magnitude(i64 v);

/// Two's-complement digit expansion of v over `width` bits (digits in
/// {0, +1} except the top digit which is {0, -1}). Requires v to fit.
SignedDigitVector to_twos_complement(i64 v, int width);

}  // namespace mrpf::number
