// Canonical signed digit (CSD) conversion.
//
// CSD is the unique signed-digit representation with no two adjacent
// nonzero digits; among all signed-digit representations of a value it has
// the minimum number of nonzero digits, which is why the paper uses it as
// the cost of the signed-powers-of-two (SPT) multiplier of a constant.
#pragma once

#include "mrpf/common/bits.hpp"
#include "mrpf/number/digits.hpp"

namespace mrpf::number {

/// CSD digits of v (LSB first, trimmed). to_csd(0) is the empty vector.
SignedDigitVector to_csd(i64 v);

/// Number of nonzero CSD digits of v — the minimal signed-power-of-two
/// term count. csd_weight(0) == 0.
int csd_weight(i64 v);

}  // namespace mrpf::number
