#include "mrpf/number/csd.hpp"

#include <bit>
#include <limits>

#include "mrpf/common/error.hpp"

namespace mrpf::number {

SignedDigitVector to_csd(i64 v) {
  MRPF_CHECK(v > std::numeric_limits<i64>::min() / 4 &&
                 v < std::numeric_limits<i64>::max() / 4,
             "CSD conversion operand too large");
  std::vector<SignedDigit> digits;
  // Classic recoding: examine v mod 4 to decide each digit; appending -1
  // when v ≡ 3 (mod 4) guarantees the next digit is 0 (canonical property).
  i64 x = v;
  while (x != 0) {
    if ((x & 1) == 0) {
      digits.push_back(0);
    } else {
      const i64 rem4 = ((x % 4) + 4) % 4;
      const SignedDigit d = rem4 == 1 ? SignedDigit{1} : SignedDigit{-1};
      digits.push_back(d);
      x -= d;
    }
    x /= 2;
  }
  SignedDigitVector out(std::move(digits));
  out.trim();
  return out;
}

int csd_weight(i64 v) {
  MRPF_CHECK(v > std::numeric_limits<i64>::min() / 4 &&
                 v < std::numeric_limits<i64>::max() / 4,
             "CSD conversion operand too large");
  // Closed form instead of materializing the digit vector: the CSD (NAF)
  // of u has a nonzero digit exactly at the positions where u XOR 3u has a
  // set bit, so the weight is one popcount. This runs once per color class
  // in the color-graph builder, where to_csd()'s heap allocation dominated
  // the profile. to_csd() remains the oracle in the unit tests.
  const u64 u = abs_u64(v);
  return std::popcount(u ^ (3 * u));
}

}  // namespace mrpf::number
