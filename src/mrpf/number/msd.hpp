// Minimal signed digit (MSD) representations.
//
// The CSD form is only one of possibly many signed-digit representations
// with the minimal nonzero-digit count. Enumerating all of them enlarges
// the pattern space of common-subexpression elimination (Park & Kang,
// DAC'01) — exposed here as an optional CSE extension and an ablation.
#pragma once

#include <vector>

#include "mrpf/common/bits.hpp"
#include "mrpf/number/digits.hpp"

namespace mrpf::number {

/// All signed-digit representations of v that achieve csd_weight(v)
/// nonzero digits within degree ≤ max_degree. The CSD form is always
/// included. `max_results` caps combinatorial blow-up.
std::vector<SignedDigitVector> enumerate_msd(i64 v, int max_degree,
                                             std::size_t max_results = 64);

}  // namespace mrpf::number
