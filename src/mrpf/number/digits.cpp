#include "mrpf/number/digits.hpp"

#include "mrpf/common/error.hpp"

namespace mrpf::number {

SignedDigitVector::SignedDigitVector(std::vector<SignedDigit> digits)
    : digits_(std::move(digits)) {
  for (const SignedDigit d : digits_) {
    MRPF_CHECK(d == -1 || d == 0 || d == 1, "signed digit out of range");
  }
}

i64 SignedDigitVector::value() const {
  MRPF_CHECK(digits_.size() <= 62, "signed-digit value overflows int64");
  i64 v = 0;
  for (std::size_t k = digits_.size(); k-- > 0;) {
    v = v * 2 + digits_[k];
  }
  return v;
}

int SignedDigitVector::nonzero_count() const {
  int c = 0;
  for (const SignedDigit d : digits_) c += (d != 0);
  return c;
}

int SignedDigitVector::degree() const {
  for (std::size_t k = digits_.size(); k-- > 0;) {
    if (digits_[k] != 0) return static_cast<int>(k);
  }
  return -1;
}

bool SignedDigitVector::is_canonical() const {
  for (std::size_t k = 1; k < digits_.size(); ++k) {
    if (digits_[k] != 0 && digits_[k - 1] != 0) return false;
  }
  return true;
}

void SignedDigitVector::trim() {
  while (!digits_.empty() && digits_.back() == 0) digits_.pop_back();
}

std::string SignedDigitVector::to_string() const {
  if (digits_.empty()) return "0";
  std::string s;
  s.reserve(digits_.size());
  for (std::size_t k = digits_.size(); k-- > 0;) {
    s.push_back(digits_[k] == 0 ? '0' : (digits_[k] > 0 ? '+' : '-'));
  }
  return s;
}

SignedDigitVector to_sign_magnitude(i64 v) {
  const SignedDigit sign = v < 0 ? SignedDigit{-1} : SignedDigit{1};
  u64 m = v < 0 ? static_cast<u64>(-(v + 1)) + 1 : static_cast<u64>(v);
  std::vector<SignedDigit> digits;
  while (m != 0) {
    digits.push_back((m & 1) != 0 ? sign : SignedDigit{0});
    m >>= 1;
  }
  return SignedDigitVector(std::move(digits));
}

SignedDigitVector to_twos_complement(i64 v, int width) {
  MRPF_CHECK(width >= 1 && width <= 62, "two's-complement width out of range");
  const i64 lo = -(i64{1} << (width - 1));
  const i64 hi = (i64{1} << (width - 1)) - 1;
  MRPF_CHECK(v >= lo && v <= hi, "value does not fit in requested width");
  std::vector<SignedDigit> digits(static_cast<std::size_t>(width), 0);
  u64 bits = static_cast<u64>(v);
  for (int k = 0; k < width; ++k) {
    digits[static_cast<std::size_t>(k)] =
        ((bits >> k) & 1) != 0 ? SignedDigit{1} : SignedDigit{0};
  }
  if (digits.back() == 1) digits.back() = -1;  // MSB weight is -2^(w-1)
  return SignedDigitVector(std::move(digits));
}

}  // namespace mrpf::number
