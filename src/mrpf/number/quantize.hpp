// Coefficient quantization: the two scaling regimes evaluated by the paper.
//
// * Uniform scaling — all coefficients share one scale factor chosen so the
//   largest magnitude uses the full wordlength. One global alignment.
// * Maximal scaling (Muhammad & Roy, TCAD'02) — each coefficient is scaled
//   by its own power of two so that every nonzero coefficient individually
//   uses the full wordlength; per-tap alignment shifts (free hard wiring)
//   restore the common scale. This maximizes per-coefficient precision and
//   densifies the digit pattern, which is why it raises multiplier cost.
#pragma once

#include <vector>

#include "mrpf/common/bits.hpp"

namespace mrpf::number {

/// One quantized coefficient: the integer value and the power-of-two
/// alignment. The realized coefficient is value / 2^scale_log2 relative to
/// the common filter scale (see QuantizedCoefficients::global_scale).
struct QuantizedCoeff {
  i64 value = 0;      // integer in [-(2^(W-1)-1), 2^(W-1)-1]
  int scale_log2 = 0; // per-coefficient extra scaling (0 under uniform)
};

struct QuantizedCoefficients {
  std::vector<QuantizedCoeff> coeffs;
  int wordlength = 0;
  /// All realized coefficients equal value_i · 2^-scale_log2_i · global_scale
  /// where global_scale maps integers back to the original double range.
  double global_scale = 1.0;

  std::vector<i64> values() const;
  /// Realized double coefficient i (for error measurement).
  double realized(std::size_t i) const;
  /// Max |realized - original| over all taps, given the originals.
  double max_abs_error(const std::vector<double>& original) const;
};

/// Uniform scaling: c_i = round(h_i · S), S = (2^(W-1)-1)/max|h|.
/// Requires 2 ≤ wordlength ≤ 24 and a nonzero coefficient vector.
QuantizedCoefficients quantize_uniform(const std::vector<double>& h,
                                       int wordlength);

/// Maximal scaling: every nonzero c_i is scaled by its own 2^{k_i} so that
/// |c_i| ∈ [2^(W-2), 2^(W-1)). k_i is recorded in scale_log2 (relative to
/// the uniform scale of the largest coefficient, so k_i ≥ 0).
///
/// Postcondition: every coefficient is either exactly {0, 0} or has
/// |value| ∈ [2^(W-2), 2^(W-1)) with 0 ≤ scale_log2 ≤ 62. Coefficients
/// whose magnitude is more than ~2^62 below the bank maximum cannot reach
/// full scale within the supported shift budget — they quantize to an
/// explicit {0, 0} (they contribute nothing representable at this
/// wordlength) rather than carrying a clamped, meaningless shift.
QuantizedCoefficients quantize_maximal(const std::vector<double>& h,
                                       int wordlength);

}  // namespace mrpf::number
