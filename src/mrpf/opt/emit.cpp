#include "mrpf/opt/emit.hpp"

#include <algorithm>
#include <unordered_map>

#include "mrpf/common/error.hpp"

namespace mrpf::opt {

arch::AdderGraph build_bnb_graph(const std::vector<BnbStep>& steps) {
  arch::AdderGraph graph;
  // Odd value -> node realizing it (fundamental = value << residue).
  std::unordered_map<i64, int> node_of;
  node_of.emplace(1, arch::AdderGraph::kInputNode);

  for (const BnbStep& step : steps) {
    const auto ia = node_of.find(step.a);
    const auto ib = node_of.find(step.b);
    MRPF_CHECK(ia != node_of.end() && ib != node_of.end(),
               "build_bnb_graph: step operand not yet available");
    const int na = ia->second;
    const int nb = ib->second;
    const int ra = trailing_zeros(graph.fundamental(na));
    const int rb = trailing_zeros(graph.fundamental(nb));

    // Align both operands so each wiring shift stays non-negative:
    //   new = (a << x) ± (b << (k + x)),  x = max(ra, rb - k, 0).
    const int x = std::max({ra, rb - step.shift, 0});
    const int sa = x - ra;
    const int sb = step.shift + x - rb;

    const i128 raw =
        step.subtract
            ? static_cast<i128>(step.a) -
                  (static_cast<i128>(step.b) << step.shift)
            : static_cast<i128>(step.a) +
                  (static_cast<i128>(step.b) << step.shift);
    MRPF_CHECK(raw != 0, "build_bnb_graph: step cancels to zero");
    // A negative raw difference swaps operand order instead of negating,
    // keeping every fundamental positive. add_op throws if the aligned
    // fundamental overflows 62 bits; the caller falls back to greedy.
    const int node = raw > 0 ? graph.add_op(na, sa, nb, sb, step.subtract)
                             : graph.add_op(nb, sb, na, sa, true);
    MRPF_CHECK(odd_part(graph.fundamental(node)) == step.value,
               "build_bnb_graph: emitted fundamental mismatch");
    node_of.emplace(step.value, node);
  }
  return graph;
}

}  // namespace mrpf::opt
