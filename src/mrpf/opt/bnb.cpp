#include "mrpf/opt/bnb.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "mrpf/common/error.hpp"
#include "mrpf/common/hash.hpp"
#include "mrpf/opt/bounds.hpp"

namespace mrpf::opt {

namespace {

/// Dominance-memo size cap: cleared (deterministically) when exceeded so
/// a pathological bank cannot grow the memo without bound.
constexpr std::size_t kMemoCap = std::size_t{1} << 20;

struct Candidate {
  i64 value = 0;
  i64 a = 0;
  i64 b = 0;
  int shift = 0;
  bool subtract = false;
  bool is_target = false;
};

class Searcher {
 public:
  Searcher(const std::vector<i64>& targets, const BnbOptions& options,
           int max_shift, i64 value_limit)
      : options_(options), max_shift_(max_shift), value_limit_(value_limit) {
    avail_.push_back(1);
    in_avail_.insert(1);
    for (const i64 t : targets) remaining_.insert(t);
  }

  /// Exhaustive DFS for a chain of exactly <= depth_cap adders. Returns
  /// true when one is found (recorded in steps()); false when the space
  /// is exhausted. aborted() reports a budget stop, which invalidates the
  /// "exhausted" reading.
  bool run(int depth_cap) {
    depth_cap_ = depth_cap;
    memo_.clear();
    return dfs(0);
  }

  bool aborted() const { return aborted_; }
  long long steps_explored() const { return steps_; }
  const std::vector<BnbStep>& steps() const { return chain_; }

 private:
  bool charge(long long units) {
    steps_ += units;
    if (steps_ >= options_.step_budget) aborted_ = true;
    return !aborted_;
  }

  /// Order-independent hash of the current available-value set.
  u64 avail_hash() const {
    std::vector<i64> sorted = avail_;
    std::sort(sorted.begin(), sorted.end());
    u64 h = kFnvOffset;
    for (const i64 v : sorted) h = fnv1a64_word(static_cast<u64>(v), h);
    return h;
  }

  void combine(i64 a, i64 b, std::vector<Candidate>& out) {
    for (int k = 0; k <= max_shift_; ++k) {
      const i128 shifted = static_cast<i128>(b) << k;
      if (shifted > 2 * static_cast<i128>(value_limit_)) break;
      for (const bool subtract : {false, true}) {
        const i128 raw = subtract ? static_cast<i128>(a) - shifted
                                  : static_cast<i128>(a) + shifted;
        if (raw == 0) continue;
        const i64 mag = static_cast<i64>(raw < 0 ? -raw : raw);
        const i64 v = odd_part(mag);
        if (v > value_limit_ || in_avail_.count(v) != 0) continue;
        out.push_back(Candidate{v, a, b, k, subtract,
                                remaining_.count(v) != 0});
      }
    }
  }

  bool dfs(int depth) {
    if (remaining_.empty()) return true;
    if (aborted_) return false;
    const int needed = static_cast<int>(remaining_.size());
    if (depth + needed > depth_cap_) return false;

    // Dominance: the same available set at the same or a deeper depth
    // spans a subset of an already-explored subtree.
    const u64 h = avail_hash();
    if (memo_.size() > kMemoCap) memo_.clear();
    const auto [it, fresh] = memo_.try_emplace(h, depth);
    if (!fresh) {
      if (it->second <= depth) return false;
      it->second = depth;
    }

    const bool targets_only = depth + needed == depth_cap_;
    std::vector<Candidate> candidates;
    for (std::size_t i = 0; i < avail_.size(); ++i) {
      for (std::size_t j = i; j < avail_.size(); ++j) {
        combine(avail_[i], avail_[j], candidates);
        if (i != j) combine(avail_[j], avail_[i], candidates);
      }
    }
    if (!charge(static_cast<long long>(candidates.size()) + 1)) return false;

    if (targets_only) {
      candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                      [](const Candidate& c) {
                                        return !c.is_target;
                                      }),
                       candidates.end());
    }
    // One branch per distinct value (any derivation spans the same
    // subtree); targets first — they shrink `remaining`, tightening the
    // depth prune fastest. Ordering is value-based and thus deterministic.
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& x, const Candidate& y) {
                       if (x.is_target != y.is_target) return x.is_target;
                       return x.value < y.value;
                     });
    candidates.erase(std::unique(candidates.begin(), candidates.end(),
                                 [](const Candidate& x, const Candidate& y) {
                                   return x.value == y.value;
                                 }),
                     candidates.end());

    for (const Candidate& c : candidates) {
      avail_.push_back(c.value);
      in_avail_.insert(c.value);
      if (c.is_target) remaining_.erase(c.value);
      chain_.push_back(BnbStep{c.value, c.a, c.b, c.shift, c.subtract});

      if (dfs(depth + 1)) return true;

      chain_.pop_back();
      if (c.is_target) remaining_.insert(c.value);
      in_avail_.erase(c.value);
      avail_.pop_back();
      if (aborted_) return false;
    }
    return false;
  }

  const BnbOptions& options_;
  int max_shift_;
  i64 value_limit_;
  int depth_cap_ = 0;

  std::vector<i64> avail_;  // insertion order == chain order, starts at 1
  std::unordered_set<i64> in_avail_;
  std::unordered_set<i64> remaining_;
  std::vector<BnbStep> chain_;
  std::unordered_map<u64, int> memo_;  // avail-set hash -> min depth seen

  long long steps_ = 0;
  bool aborted_ = false;
};

}  // namespace

BnbOutcome bnb_solve(const std::vector<i64>& targets, int upper_bound,
                     const BnbOptions& options) {
  MRPF_CHECK(options.step_budget >= 1, "bnb_solve: step budget must be >= 1");
  for (std::size_t i = 0; i < targets.size(); ++i) {
    MRPF_CHECK(targets[i] > 1 && targets[i] % 2 == 1,
               "bnb_solve: targets must be odd and > 1");
    MRPF_CHECK(i == 0 || targets[i - 1] < targets[i],
               "bnb_solve: targets must be sorted and unique");
  }

  BnbOutcome out;
  out.adders = upper_bound;
  if (targets.empty()) {
    // Nothing to synthesize: zero adders, trivially optimal.
    out.status = BnbStatus::kOptimal;
    out.adders = 0;
    return out;
  }

  int bmax = 0;
  for (const i64 t : targets) bmax = std::max(bmax, bit_width_abs(t));
  if (static_cast<int>(targets.size()) > options.max_targets ||
      bmax > options.max_bits) {
    out.status = BnbStatus::kSkipped;
    out.lower_bound = static_cast<int>(targets.size());
    return out;
  }

  // Root lower bound: every distinct odd target needs its own adder, and
  // any solution contains a single-constant chain for each target.
  int lb = static_cast<int>(targets.size());
  for (const i64 t : targets) lb = std::max(lb, scm_lower_bound(t));
  out.lower_bound = lb;

  if (lb >= upper_bound) {
    // The bound alone proves the greedy plan optimal; no search needed.
    out.status = BnbStatus::kProvedExisting;
    out.lower_bound = upper_bound;
    return out;
  }

  const int max_shift = bmax + 2;
  const i64 value_limit = i64{1} << (bmax + 2);
  Searcher search(targets, options, max_shift, value_limit);

  for (int depth_cap = lb; depth_cap < upper_bound; ++depth_cap) {
    const bool found = search.run(depth_cap);
    out.steps_explored = search.steps_explored();
    if (found) {
      out.status = BnbStatus::kOptimal;
      out.adders = depth_cap;
      out.lower_bound = depth_cap;
      out.steps = search.steps();
      return out;
    }
    if (search.aborted()) {
      // Every depth below depth_cap was exhausted; this one was not.
      out.status = BnbStatus::kBudget;
      out.lower_bound = depth_cap;
      return out;
    }
    out.lower_bound = depth_cap + 1;  // depth_cap exhausted: optimum is above
  }
  out.status = BnbStatus::kProvedExisting;
  out.lower_bound = upper_bound;
  return out;
}

}  // namespace mrpf::opt
