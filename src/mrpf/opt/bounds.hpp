// Memoized admissible lower bounds for the branch-and-bound optimizer.
//
// Two bound families, combined per target:
//
//  - ScmTable seeding: any adder graph realizing t·x contains an adder
//    chain from 1 to odd(t) (walk the defining ops backward from t's
//    node), so the exact single-constant cost is a valid lower bound on
//    any multi-constant solution containing t. Within the table range the
//    bound is exact for costs 0..3; the cost-4 sentinel (">3 adders") is
//    itself admissible as "at least 4".
//
//  - CSD doubling: one adder at most doubles the number of nonzero CSD
//    digits a value can carry (x has one digit), so any t needs at least
//    ceil(log2(nonzero_csd_digits(t))) adders. This covers targets wider
//    than the table.
//
// The table is built lazily, once per process, and shared across every
// solve (drivers run concurrently from the batch pools, so construction
// hides behind a thread-safe function-local static).
#pragma once

#include <optional>

#include "mrpf/common/bits.hpp"

namespace mrpf::opt {

/// Bit range of the shared single-constant table. 12 bits covers every
/// Table-1 filter coefficient while keeping the one-time exhaustive
/// enumeration cheap.
inline constexpr int kBoundTableBits = 12;

/// Provable lower bound on the adders any solution spends to make the odd
/// value `odd` (> 0) available. Exact (0..3) within the table range when
/// below the sentinel; admissible everywhere.
int scm_lower_bound(i64 odd);

/// The exact single-constant adder cost when the shared table proves it
/// (cost 0..3 with odd(t) in table range); std::nullopt for the ">3"
/// sentinel and for values beyond the table.
std::optional<int> scm_exact_cost(i64 odd);

}  // namespace mrpf::opt
