#include "mrpf/opt/bounds.hpp"

#include "mrpf/arch/scm_exact.hpp"
#include "mrpf/common/error.hpp"
#include "mrpf/number/repr.hpp"

namespace mrpf::opt {

namespace {

/// The shared exact table, built on first use (thread-safe magic static —
/// concurrent first solves block on one construction, never two).
const arch::ScmTable& shared_table() {
  static const arch::ScmTable table(kBoundTableBits);
  return table;
}

/// ceil(log2(nonzero CSD digits)): each adder at most doubles the digit
/// count reachable from the single-digit input.
int csd_doubling_bound(i64 odd) {
  const int digits = number::nonzero_digits(odd, number::NumberRep::kCsd);
  int bound = 0;
  while ((1 << bound) < digits) ++bound;
  return bound;
}

}  // namespace

int scm_lower_bound(i64 odd) {
  MRPF_CHECK(odd > 0 && odd % 2 == 1, "scm_lower_bound: value must be odd");
  if (odd == 1) return 0;
  if (odd < (i64{1} << kBoundTableBits)) {
    // cost 0..3 is exact; the 4 sentinel means ">3", admissible as-is.
    return shared_table().cost(odd);
  }
  return csd_doubling_bound(odd);
}

std::optional<int> scm_exact_cost(i64 odd) {
  MRPF_CHECK(odd > 0 && odd % 2 == 1, "scm_exact_cost: value must be odd");
  if (odd == 1) return 0;
  if (odd >= (i64{1} << kBoundTableBits)) return std::nullopt;
  const int cost = shared_table().cost(odd);
  if (cost >= 4) return std::nullopt;  // ">3 adders" sentinel: not exact
  return cost;
}

}  // namespace mrpf::opt
