// Lowers a branch-and-bound step chain into an arch::AdderGraph.
//
// The solver works on odd-normalized values; the graph works on exact
// fundamentals with non-negative wiring shifts only. Each emitted node
// therefore carries its odd value times a residual power of two (the
// even factor a strictly left-shift-only realization cannot drop), and
// every combine re-aligns its operands' residues:
//
//   node(v) = v << r,  r >= 0
//   v_new << t = a ± (b << k)   (t = trailing zeros of the raw sum)
//   node(v_new) = (node(a) << (x - ra)) ± (node(b) << (k + x - rb)),
//                 x = max(ra, rb - k, 0)
//
// Subtractions whose raw value is negative swap operand order instead of
// negating, keeping every fundamental positive. Taps absorb the residues
// for free — arch::Tap supports negative shifts (dropping always-zero
// LSBs is wiring, not hardware). A pathological chain whose residues
// overflow the 62-bit fundamental range makes add_op throw mrpf::Error;
// the driver treats that like a budget miss and keeps the greedy plan.
#pragma once

#include <vector>

#include "mrpf/arch/adder_graph.hpp"
#include "mrpf/opt/bnb.hpp"

namespace mrpf::opt {

/// Replays the chain into a graph: node 0 is the input, node i+1 realizes
/// steps[i].value (times a power-of-two residue). One adder per step.
/// Throws mrpf::Error on a malformed chain or fundamental overflow.
arch::AdderGraph build_bnb_graph(const std::vector<BnbStep>& steps);

}  // namespace mrpf::opt
