// Exact branch-and-bound adder-graph search for small coefficient banks.
//
// The search runs over odd-normalized fundamentals (shifts and signs are
// free wiring, exactly as in arch/scm_exact): a state is the set of odd
// values already available (starting from {1}), and one search step picks
// any |a ± (b << k)| of two available values, odd-normalizes it, and adds
// it — one physical adder. A bank is solved when every target is
// available. Iterative deepening over the adder count D turns the DFS
// into an optimality proof: the first depth that admits a solution is the
// minimum (every shallower depth was exhausted first), and exhausting
// every D below the greedy upper bound proves the greedy plan optimal.
//
// Pruning, in order of leverage:
//  - depth + |remaining targets| > D: each missing target still needs its
//    own adder (distinct odd fundamentals never coincide).
//  - zero slack: when depth + |remaining| == D every further step must BE
//    a remaining target — intermediate helpers no longer fit.
//  - dominance memo: an available-value SET reached again at the same or
//    a greater depth spans a subset of the subtree already explored.
//
// Like the ScmTable, intermediates are capped at 2^(bmax+2) and wiring
// shifts at bmax+2 (bmax = widest target) — the standard bounds under
// which minimal chains for constants this size are known to be found; the
// result is exact within that canonical search space.
//
// The budget is counted in deterministic search steps (candidate
// generation), never wall time, so a budget-limited outcome is
// bit-reproducible across machines and thread counts.
#pragma once

#include <vector>

#include "mrpf/common/bits.hpp"

namespace mrpf::opt {

struct BnbOptions {
  /// Total deterministic step budget for the whole solve (all deepening
  /// iterations combined). Must be >= 1; the driver resolves the 0 =
  /// "unset" MrpOptions convention before calling.
  long long step_budget = 1;
  /// Banks with more distinct odd targets than this are skipped outright
  /// (the greedy plan stands, tagged kSkipped) — the search space grows
  /// too fast for a budget to do useful work.
  int max_targets = 10;
  /// Targets wider than this many bits skip likewise.
  int max_bits = 20;
};

enum class BnbStatus {
  kOptimal,         ///< Found a plan strictly better than the upper bound.
  kProvedExisting,  ///< Exhausted every depth below it: greedy is optimal.
  kBudget,          ///< Step budget hit before a proof either way.
  kSkipped,         ///< Bank outside max_targets/max_bits; never searched.
};

/// One committed search step: value = odd(|a ± (b << shift)|), a and b
/// previously available odd values. Steps are emitted in search order, so
/// replaying them in sequence rebuilds the adder graph (see emit.hpp).
struct BnbStep {
  i64 value = 0;
  i64 a = 0;
  i64 b = 0;
  int shift = 0;
  bool subtract = false;
};

struct BnbOutcome {
  BnbStatus status = BnbStatus::kSkipped;
  /// Adders of the returned plan: steps.size() on kOptimal, the caller's
  /// upper bound otherwise.
  int adders = 0;
  /// Best proven lower bound on the optimum (== adders when the status
  /// carries a proof; the optimality gap is adders - lower_bound).
  int lower_bound = 0;
  /// Deterministic steps spent across every deepening iteration.
  long long steps_explored = 0;
  /// The optimal chain, kOptimal only (empty otherwise).
  std::vector<BnbStep> steps;
};

/// Searches for an adder chain covering every target with fewer than
/// `upper_bound` adders. `targets` must be sorted, unique, odd and > 1
/// (the primary-vertex form, constants 0/±2^k already excluded).
/// Deterministic: the outcome depends only on (targets, upper_bound,
/// options).
BnbOutcome bnb_solve(const std::vector<i64>& targets, int upper_bound,
                     const BnbOptions& options);

}  // namespace mrpf::opt
