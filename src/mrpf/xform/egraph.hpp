// E-graph equality saturation over odd shift-add fundamentals (the first
// plan pass; see core/pass_manager.hpp for how it slots between the
// SchemeDrivers and lower_plan).
//
// Every e-class is one odd positive fundamental value, hash-consed: two
// routes to the same value always land in the same class, which is how
// common subterms merge. A class's e-nodes are its known constructions,
// all of the op-emittable odd form
//     v = p + (q << k)      or      v = |p - (q << k)|,   k >= 1
// with p, q odd classes — exactly the shift-add ops lower_plan can replay
// (k = 0 would make the result even, and ops cannot right-shift, so the
// odd-form restriction loses nothing for odd targets: the CSD chain of any
// odd value is expressible, which seeds a finite extraction cost for every
// target).
//
// The graph is seeded from the original plan (its op fundamentals and
// their odd-form constructions where the raw op normalizes to one), the
// tap targets with their CSD chains (factoring/CSD re-expression), and all
// pairwise target sums/differences (the MRPF difference rule). Saturation
// then closes the class set under the two forms, deterministically: rounds
// combine every ordered class pair with at least one member admitted since
// the previous round, shifts ascending, add before subtract, under a
// step budget — identical inputs and budget give an identical graph on
// every platform (no hashing order, no timing, no randomness is observable
// in the result).
//
// Extraction finds the cheapest DAG realizing all targets: a Bellman fixed
// point computes exact per-class tree costs, then a memoized greedy emit
// (targets ascending) reuses already-built classes for free, picking among
// strictly-cost-decreasing constructions so emission always terminates.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mrpf/arch/adder_graph.hpp"
#include "mrpf/common/bits.hpp"

namespace mrpf::xform {

/// A cheapest-DAG extraction: replayable ops (node 0 is the input, node
/// k+1 is ops[k]) plus the node realizing each target's odd value.
struct Extraction {
  std::vector<arch::AdderOp> ops;
  /// target odd value -> graph node carrying it (value 1 -> node 0).
  std::unordered_map<i64, int> node_of;
  int adders() const { return static_cast<int>(ops.size()); }
};

class EGraph {
 public:
  /// `plan_ops` is the original plan's op list (seeds proven-useful
  /// intermediates); `targets` are the odd positive values the taps need
  /// (duplicates fine). Seeding consumes no budget.
  EGraph(const std::vector<arch::AdderOp>& plan_ops,
         const std::vector<i64>& targets);

  /// Runs equality saturation under `budget` steps (one step = one
  /// candidate (p, q, shift) combination evaluated). Returns the steps
  /// actually spent. Reaching a fixpoint before the budget runs out sets
  /// saturated().
  long long saturate(long long budget);

  bool saturated() const { return saturated_; }
  std::size_t num_classes() const { return values_.size(); }

  /// Cheapest-DAG extraction for the ctor targets. Deterministic; every
  /// target is realized (the CSD seed chain guarantees a finite cost).
  Extraction extract() const;

 private:
  enum class Kind : std::uint8_t {
    kAdd,   // v = p + (q << k)
    kSubP,  // v = p - (q << k)        (p larger)
    kSubQ,  // v = (q << k) - p        (shifted side larger)
  };
  struct Cons {
    int p = 0;
    int q = 0;
    int shift = 0;
    Kind kind = Kind::kAdd;
  };

  int find_class(u64 value) const;  // -1 when absent
  /// Hash-consed admission: returns the class id of `value`, creating it
  /// when new and admissible (odd, within the bit limit, class cap not
  /// hit); -1 when inadmissible.
  int add_class(u64 value);
  /// Adds a construction to `cls` unless it is a duplicate or the
  /// per-class cap is hit.
  void add_cons(int cls, const Cons& cons);
  /// Normalizes |±p ± (q << k)| into odd form and admits the resulting
  /// class and construction.
  void admit_combination(int p_cls, bool p_neg, int q_cls, int k, bool q_neg);
  void seed_from_ops(const std::vector<arch::AdderOp>& plan_ops);
  void seed_csd_chain(u64 target);
  void seed_target_pairs();

  std::vector<u64> values_;                 // class id -> odd value
  std::vector<std::vector<Cons>> cons_;     // class id -> constructions
  std::unordered_map<u64, int> index_;      // odd value -> class id
  std::vector<u64> targets_;                // sorted, unique, odd
  int bit_limit_ = 0;                       // admission: bits(value) <= this
  std::size_t frontier_start_ = 0;          // first class of the next round
  bool saturated_ = false;
};

}  // namespace mrpf::xform
