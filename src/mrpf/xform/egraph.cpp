#include "mrpf/xform/egraph.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "mrpf/common/error.hpp"
#include "mrpf/number/csd.hpp"

namespace mrpf::xform {

namespace {

/// Class-count cap. With the default MRPF_XFORM_BUDGET a graph this size
/// still closes to a fixpoint (ordered pairs × shifts stays under the
/// budget); admission past the cap is refused deterministically, so a
/// capped graph is still bit-reproducible.
constexpr std::size_t kMaxClasses = 160;
/// Constructions kept per class. Extraction only ever needs the tight
/// ones; the cap bounds memory on dense value ranges.
constexpr std::size_t kMaxCons = 24;

/// Everything the graph admits must sit comfortably below the 62-bit
/// fundamental range lower_plan enforces.
constexpr int kHardBitLimit = 61;

}  // namespace

int EGraph::find_class(u64 value) const {
  const auto it = index_.find(value);
  return it == index_.end() ? -1 : it->second;
}

int EGraph::add_class(u64 value) {
  const auto it = index_.find(value);
  if (it != index_.end()) return it->second;
  if (value == 0 || (value & 1) == 0) return -1;
  if (std::bit_width(value) > static_cast<unsigned>(bit_limit_)) return -1;
  if (values_.size() >= kMaxClasses) return -1;
  const int id = static_cast<int>(values_.size());
  values_.push_back(value);
  cons_.emplace_back();
  index_.emplace(value, id);
  return id;
}

void EGraph::add_cons(int cls, const Cons& cons) {
  if (cls <= 0) return;  // class 0 is the input; it needs no construction
  std::vector<Cons>& list = cons_[static_cast<std::size_t>(cls)];
  if (list.size() >= kMaxCons) return;
  for (const Cons& c : list) {
    if (c.p == cons.p && c.q == cons.q && c.shift == cons.shift &&
        c.kind == cons.kind) {
      return;
    }
  }
  list.push_back(cons);
}

/// Normalizes |sp·p + sq·(q << k)| (p, q odd class values, k >= 1) into an
/// odd-form construction and admits it. The unshifted-vs-shifted roles fix
/// the emitted op exactly:
///   both signs equal     ->  v = p + (q<<k)          (kAdd)
///   signs differ, p big  ->  v = p - (q<<k)          (kSubP)
///   signs differ, q big  ->  v = (q<<k) - p          (kSubQ)
void EGraph::admit_combination(int p_cls, bool p_neg, int q_cls, int k,
                               bool q_neg) {
  const u64 p = values_[static_cast<std::size_t>(p_cls)];
  const u64 q = values_[static_cast<std::size_t>(q_cls)];
  if (k < 1 || k >= 62) return;
  if (std::bit_width(q) + k > kHardBitLimit) return;
  const u64 q2 = q << k;
  Cons cons;
  cons.p = p_cls;
  cons.q = q_cls;
  cons.shift = k;
  u64 value = 0;
  if (p_neg == q_neg) {
    value = p + q2;
    cons.kind = Kind::kAdd;
  } else if (p > q2) {
    value = p - q2;
    cons.kind = Kind::kSubP;
  } else if (q2 > p) {
    value = q2 - p;
    cons.kind = Kind::kSubQ;
  } else {
    return;  // exact cancellation
  }
  const int cls = add_class(value);
  if (cls >= 0) add_cons(cls, cons);
}

void EGraph::seed_from_ops(const std::vector<arch::AdderOp>& plan_ops) {
  // Replay the plan's raw fundamentals (they may be negative or even —
  // lower_plan allows both) and register each node's odd part. When the
  // raw op normalizes to a single odd-form construction (exactly one
  // operand exponent is zero after factoring out the common power of two),
  // register that construction too, so proven-useful intermediates enter
  // the graph with a route to build them.
  std::vector<i64> fundamental(plan_ops.size() + 1, 0);
  fundamental[0] = 1;
  for (std::size_t n = 0; n < plan_ops.size(); ++n) {
    const arch::AdderOp& op = plan_ops[n];
    const i64 a = fundamental[static_cast<std::size_t>(op.a)];
    const i64 b = fundamental[static_cast<std::size_t>(op.b)];
    // Verified plans keep every fundamental within 62 bits, so i128
    // arithmetic never wraps here even on hostile inputs.
    const i64 value = static_cast<i64>(
        i128(a) * (i128(1) << op.shift_a) +
        (op.subtract ? -1 : 1) * i128(b) * (i128(1) << op.shift_b));
    fundamental[n + 1] = value;
    if (value == 0) continue;
    add_class(static_cast<u64>(odd_part(value)));

    const int alpha = trailing_zeros(a) + op.shift_a;
    const int beta = trailing_zeros(b) + op.shift_b;
    if (a == 0 || b == 0 || alpha == beta) continue;
    const bool a_neg = a < 0;
    const bool b_neg = (b < 0) != op.subtract;
    const int p_cls = find_class(static_cast<u64>(
        odd_part(alpha < beta ? a : b)));
    const int q_cls = find_class(static_cast<u64>(
        odd_part(alpha < beta ? b : a)));
    if (p_cls < 0 || q_cls < 0) continue;
    const int k = alpha < beta ? beta - alpha : alpha - beta;
    const bool p_neg = alpha < beta ? a_neg : b_neg;
    const bool q_neg = alpha < beta ? b_neg : a_neg;
    admit_combination(p_cls, p_neg, q_cls, k, q_neg);
  }
}

void EGraph::seed_csd_chain(u64 target) {
  // Partial CSD sums of an odd value are all odd (the LSB digit is
  // nonzero), and each step adds one signed power of two to the previous
  // partial — exactly an odd-form op against class 0 (value 1). This gives
  // every target a finite extraction cost no worse than its CSD multiplier.
  if (target <= 1) return;
  const number::SignedDigitVector digits =
      number::to_csd(static_cast<i64>(target));
  i64 partial = 0;
  bool first = true;
  for (std::size_t k = 0; k < digits.size(); ++k) {
    if (digits[k] == 0) continue;
    if (first) {
      partial = digits[k] * (i64{1} << k);
      first = false;
      continue;
    }
    const i64 prev = partial;
    partial += digits[k] * (i64{1} << k);
    const int p_cls = add_class(abs_u64(prev));
    if (p_cls < 0) return;
    admit_combination(p_cls, prev < 0, /*q_cls=*/0, static_cast<int>(k),
                      digits[k] < 0);
  }
}

void EGraph::seed_target_pairs() {
  // The MRPF difference rule: any two odd targets differ (and sum) by an
  // even value, so t2 = t1 + (d << k) and t2 = (s << k') - t1 are both
  // odd-form ops through the difference/sum odd parts. Seed those odd
  // parts (with their own CSD chains, so they are constructible) and the
  // cross-target constructions.
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    for (std::size_t j = i + 1; j < targets_.size(); ++j) {
      const i64 t1 = static_cast<i64>(targets_[i]);
      const i64 t2 = static_cast<i64>(targets_[j]);
      const int c1 = find_class(targets_[i]);
      const int c2 = find_class(targets_[j]);
      if (c1 < 0 || c2 < 0) continue;

      const i64 diff = t2 - t1;  // > 0, even
      const u64 dv = static_cast<u64>(odd_part(diff));
      seed_csd_chain(dv);
      const int dc = add_class(dv);
      if (dc >= 0) {
        const int k = trailing_zeros(diff);
        admit_combination(c1, false, dc, k, false);  // t2 = t1 + (d<<k)
        admit_combination(c2, false, dc, k, true);   // t1 = t2 - (d<<k)
      }

      const i64 sum = t1 + t2;  // even
      const u64 sv = static_cast<u64>(odd_part(sum));
      seed_csd_chain(sv);
      const int sc = add_class(sv);
      if (sc >= 0) {
        const int k = trailing_zeros(sum);
        admit_combination(c1, true, sc, k, false);  // t2 = (s<<k) - t1
        admit_combination(c2, true, sc, k, false);  // t1 = (s<<k) - t2
      }
    }
  }
}

EGraph::EGraph(const std::vector<arch::AdderOp>& plan_ops,
               const std::vector<i64>& targets) {
  int max_bits = 1;
  for (const i64 t : targets) max_bits = std::max(max_bits, bit_width_abs(t));
  // One bit of headroom over the widest target: standard MCM practice —
  // useful intermediates barely exceed the targets, and the tight bound is
  // what lets saturation reach a fixpoint.
  bit_limit_ = std::min(max_bits + 1, kHardBitLimit);

  values_.reserve(kMaxClasses);
  cons_.reserve(kMaxClasses);
  add_class(1);  // class 0: the input x

  for (const i64 t : targets) {
    MRPF_CHECK(t > 0 && (t & 1) == 1, "egraph: targets must be odd positive");
    targets_.push_back(static_cast<u64>(t));
  }
  std::sort(targets_.begin(), targets_.end());
  targets_.erase(std::unique(targets_.begin(), targets_.end()),
                 targets_.end());
  for (const u64 t : targets_) {
    MRPF_CHECK(add_class(t) >= 0, "egraph: target exceeds the value range");
  }

  for (const u64 t : targets_) seed_csd_chain(t);
  seed_from_ops(plan_ops);
  seed_target_pairs();
}

long long EGraph::saturate(long long budget) {
  long long steps = 0;
  saturated_ = false;
  bool exhausted = false;
  while (!exhausted) {
    const std::size_t old_n = values_.size();
    const std::size_t fresh = frontier_start_;
    if (fresh >= old_n) {
      saturated_ = true;
      break;
    }
    // Combine every ordered (unshifted p, shifted q) pair with at least
    // one member admitted since the previous round, shifts ascending.
    for (std::size_t p = 0; p < old_n && !exhausted; ++p) {
      const std::size_t q_begin = p >= fresh ? 0 : fresh;
      for (std::size_t q = q_begin; q < old_n && !exhausted; ++q) {
        const u64 pv = values_[p];
        const u64 qv = values_[q];
        const u64 limit = u64{1} << bit_limit_;
        for (int k = 1; k < 62; ++k) {
          if (std::bit_width(qv) + k > kHardBitLimit) break;
          if ((qv << k) > limit + pv) break;  // every result exceeds the cap
          if (steps >= budget) {
            exhausted = true;
            break;
          }
          ++steps;
          admit_combination(static_cast<int>(p), false, static_cast<int>(q),
                            k, false);  // p + (q<<k)
          admit_combination(static_cast<int>(p), false, static_cast<int>(q),
                            k, true);   // |p - (q<<k)|
        }
      }
    }
    frontier_start_ = old_n;
  }
  return steps;
}

Extraction EGraph::extract() const {
  const std::size_t n = values_.size();
  constexpr int kInf = std::numeric_limits<int>::max() / 4;

  // Exact per-class tree costs (no sharing), as a Bellman fixed point —
  // constructions can reference classes admitted later, so one pass is not
  // enough and relaxation until quiescence is.
  std::vector<int> cost(n, kInf);
  cost[0] = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t c = 1; c < n; ++c) {
      for (const Cons& cn : cons_[c]) {
        const int cp = cost[static_cast<std::size_t>(cn.p)];
        const int cq = cost[static_cast<std::size_t>(cn.q)];
        if (cp >= kInf || cq >= kInf) continue;
        const int t = 1 + cp + cq;
        if (t < cost[c]) {
          cost[c] = t;
          changed = true;
        }
      }
    }
  }

  Extraction out;
  std::vector<int> node_of_class(n, -1);
  node_of_class[0] = 0;

  // Memoized greedy emit: already-built classes cost nothing, and only
  // constructions whose operands are strictly cheaper than the class are
  // eligible (every finite class has a tight one), so recursion always
  // descends in cost and terminates. First-index tie-break keeps the
  // extraction deterministic.
  const auto emit = [&](const auto& self, int c) -> int {
    if (node_of_class[static_cast<std::size_t>(c)] >= 0) {
      return node_of_class[static_cast<std::size_t>(c)];
    }
    const std::vector<Cons>& list = cons_[static_cast<std::size_t>(c)];
    int best = -1;
    int best_marginal = kInf;
    for (std::size_t i = 0; i < list.size(); ++i) {
      const Cons& cn = list[i];
      const int cp = cost[static_cast<std::size_t>(cn.p)];
      const int cq = cost[static_cast<std::size_t>(cn.q)];
      if (cp >= cost[static_cast<std::size_t>(c)] ||
          cq >= cost[static_cast<std::size_t>(c)]) {
        continue;
      }
      const int marginal =
          (node_of_class[static_cast<std::size_t>(cn.p)] >= 0 ? 0 : cp) +
          (node_of_class[static_cast<std::size_t>(cn.q)] >= 0 ? 0 : cq);
      if (marginal < best_marginal) {
        best_marginal = marginal;
        best = static_cast<int>(i);
      }
    }
    MRPF_CHECK(best >= 0, "egraph: extraction lost a tight construction");
    const Cons& cn = list[static_cast<std::size_t>(best)];
    const int pn = self(self, cn.p);
    const int qn = self(self, cn.q);
    arch::AdderOp op;
    switch (cn.kind) {
      case Kind::kAdd:   // v = p + (q<<k)
        op = {pn, qn, 0, cn.shift, false};
        break;
      case Kind::kSubP:  // v = p - (q<<k)
        op = {pn, qn, 0, cn.shift, true};
        break;
      case Kind::kSubQ:  // v = (q<<k) - p
        op = {qn, pn, cn.shift, 0, true};
        break;
    }
    out.ops.push_back(op);
    const int node = static_cast<int>(out.ops.size());
    node_of_class[static_cast<std::size_t>(c)] = node;
    return node;
  };

  for (const u64 t : targets_) {
    const int c = find_class(t);
    MRPF_CHECK(c >= 0, "egraph: target class vanished");
    MRPF_CHECK(cost[static_cast<std::size_t>(c)] < kInf,
               "egraph: target has no finite-cost construction");
    out.node_of[static_cast<i64>(t)] = emit(emit, c);
  }
  return out;
}

}  // namespace mrpf::xform
