#include "mrpf/cache/fingerprint.hpp"

#include <algorithm>
#include <bit>

#include "mrpf/core/scheme_driver.hpp"

namespace mrpf::cache {

bool uses_mrp_canonical_form(core::Scheme scheme) {
  // kBnb searches over the primary-vertex set, so it is invariant under the
  // same group as MRP (drop zeros, odd part, sign, permutation, dedup).
  return scheme == core::Scheme::kMrp || scheme == core::Scheme::kMrpCse ||
         scheme == core::Scheme::kBnb;
}

CanonicalBank canonicalize(const std::vector<i64>& bank) {
  // extract_primaries is the canonicalization (drop zeros, odd part of the
  // absolute value, sort, dedup) and its refs are the back-transform; the
  // fingerprint layer only adds the hash on top.
  core::PrimaryBank pb = core::extract_primaries(bank);
  CanonicalBank cb;
  cb.values = std::move(pb.primaries);
  cb.refs = std::move(pb.refs);
  cb.content_hash = canonical_content_hash(cb.values);
  return cb;
}

std::vector<i64> shared_union_bank(
    const std::vector<std::vector<i64>>& branch_banks) {
  std::vector<i64> u;
  for (const std::vector<i64>& bank : branch_banks) {
    for (const i64 c : bank) {
      if (c != 0) u.push_back(c);
    }
  }
  std::sort(u.begin(), u.end());
  u.erase(std::unique(u.begin(), u.end()), u.end());
  return u;
}

CanonicalBank canonicalize(core::Scheme scheme, const std::vector<i64>& bank) {
  if (uses_mrp_canonical_form(scheme)) return canonicalize(bank);
  CanonicalBank cb;
  cb.values = bank;  // identity group: only exact repeats share an entry
  cb.content_hash = canonical_content_hash(cb.values);
  return cb;
}

u64 canonical_content_hash(const std::vector<i64>& canonical_values) {
  u64 h = kFnvOffset;
  for (const i64 v : canonical_values) {
    h = fnv1a64_word(static_cast<u64>(v), h);
  }
  return fnv1a64_word(static_cast<u64>(canonical_values.size()), h);
}

SolveOptionsTag options_tag(const core::MrpOptions& options) {
  SolveOptionsTag tag;
  tag.beta_bits = std::bit_cast<u64>(options.beta);
  tag.opt_budget = static_cast<u64>(options.opt_budget);
  tag.xform_budget = static_cast<u64>(options.passes.xform_budget);
  tag.l_max = options.l_max;
  tag.depth_limit = options.depth_limit;
  tag.rep = static_cast<std::uint8_t>(options.rep);
  tag.cse_on_seed = options.cse_on_seed ? 1 : 0;
  tag.recursive_levels = static_cast<std::uint8_t>(options.recursive_levels);
  tag.xform = options.passes.xform ? 1 : 0;
  tag.scheme = static_cast<std::uint8_t>(
      options.cse_on_seed ? core::Scheme::kMrpCse : core::Scheme::kMrp);
  return tag;
}

SolveOptionsTag options_tag(core::Scheme scheme,
                            const core::MrpOptions& options) {
  SolveOptionsTag tag =
      options_tag(core::scheme_driver(scheme).canonical_options(options));
  tag.scheme = static_cast<std::uint8_t>(scheme);
  return tag;
}

u64 solve_key(const CanonicalBank& canonical,
              const core::MrpOptions& options) {
  return solve_key(canonical.content_hash, options_tag(options));
}

u64 solve_key(core::Scheme scheme, const std::vector<i64>& bank,
              const core::MrpOptions& options) {
  return solve_key(canonicalize(scheme, bank).content_hash,
                   options_tag(scheme, options));
}

u64 solve_key(u64 content_hash, const SolveOptionsTag& tag) {
  u64 h = fnv1a64_word(tag.beta_bits, content_hash);
  h = fnv1a64_word(tag.opt_budget, h);
  h = fnv1a64_word(tag.xform_budget, h);
  h = fnv1a64_word((static_cast<u64>(static_cast<std::uint32_t>(tag.l_max))
                    << 32) |
                       static_cast<std::uint32_t>(tag.depth_limit),
                   h);
  h = fnv1a64_word((static_cast<u64>(tag.xform) << 32) |
                       (static_cast<u64>(tag.scheme) << 24) |
                       (static_cast<u64>(tag.rep) << 16) |
                       (static_cast<u64>(tag.cse_on_seed) << 8) |
                       tag.recursive_levels,
                   h);
  return h;
}

}  // namespace mrpf::cache
