// Canonical coefficient fingerprints for the solve cache.
//
// Canonicalization is per scheme, because each scheme has its own bank
// equivalence group:
//
//  - kMrp / kMrpCse: the MRP transformation is invariant under dropping
//    zeros, negating coefficients, shifting them by powers of two,
//    permuting and duplicating them — all leave the primary-vertex set,
//    and therefore every field of the solve except the per-coefficient
//    back-references, unchanged (paper §3.1: every constant is ±(p << s)
//    with p odd and positive, and only the distinct p survive into stage
//    A). Canonicalization reduces a bank to that invariant: drop zeros,
//    take the odd part of the absolute value, sort, dedup. The
//    per-coefficient back-transform (vertex index, shift, sign) is exactly
//    what rehydrating a cached canonical solve for the original vector
//    needs, and is the same data core::extract_primaries computes.
//
//  - every other scheme: the identity group. Simple and CSE costs count
//    duplicate coefficients; diff-MST edge weights are not
//    shift-invariant; RAG-n depends on the exact multiset. So the
//    canonical form is the bank verbatim and only exact repeats share an
//    entry — sound for any scheme, just less sharing.
//
// Alongside the bank, the fingerprint hashes a scheme+options tag, so
// every scheme keys its own namespace in one shared cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mrpf/common/hash.hpp"
#include "mrpf/core/mrp.hpp"
#include "mrpf/core/sidc.hpp"

namespace mrpf::cache {

/// The canonical form of a coefficient bank under a scheme's equivalence
/// group, plus everything needed to map a cached canonical solve back onto
/// the original vector.
struct CanonicalBank {
  /// MRP schemes: sorted, unique, odd, positive — identical for every
  /// equivalent bank (== core::extract_primaries(bank).primaries).
  /// Other schemes: the bank verbatim.
  std::vector<i64> values;
  /// MRP schemes only — per original coefficient: c == ±(values[vertex]
  /// << shift), vertex -1 for the constant 0 (==
  /// core::extract_primaries(bank).refs). Empty for identity-group
  /// schemes (no transform to undo).
  std::vector<core::PrimaryBank::Ref> refs;
  /// FNV-1a over the canonical words and their count. Equal for every
  /// equivalent bank; collisions across inequivalent banks are possible
  /// (64-bit), which is why SolveCache verifies `values` on every lookup.
  u64 content_hash = 0;
};

/// MRP-group canonicalization (kMrp/kMrpCse).
CanonicalBank canonicalize(const std::vector<i64>& bank);

/// Deterministic union bank of a shared-bank (multi-branch) solve: the
/// distinct non-zero coefficient values across every branch, sorted
/// ascending. This is the bank core::SharedBankGroup feeds through the
/// ordinary solve pipeline, so the shared-bank solve key is just the key
/// of this vector — invariant under branch order and under how the union
/// is partitioned into branches (two different polyphase factorizations of
/// the same tap multiset share one cache entry), and cache / serde / the
/// daemon need no shared-bank awareness at all. May be empty (every
/// branch all-zero); the group layer handles that without a solve.
std::vector<i64> shared_union_bank(
    const std::vector<std::vector<i64>>& branch_banks);

/// Scheme-dispatching canonicalization: the MRP group for kMrp/kMrpCse,
/// the identity group (bank verbatim, no refs) for every other scheme.
CanonicalBank canonicalize(core::Scheme scheme, const std::vector<i64>& bank);

/// True when the scheme's equivalence group folds banks onto the MRP
/// primary-vertex canonical form (and cached taps need the refs
/// back-transform on rehydration).
bool uses_mrp_canonical_form(core::Scheme scheme);

/// The scheme plus the MrpOptions fields that select a distinct solve.
/// pool, cache, cache_path and use_reference_engine are excluded: they
/// change wall time, never a result field (bit-identity is asserted by
/// the PR-1/PR-2 differential tests). Stored alongside each cache entry
/// so a lookup match is exact, not just hash-equal.
struct SolveOptionsTag {
  u64 beta_bits = 0;  // bit pattern of MrpOptions::beta (exact compare)
  /// Resolved kBnb search budget (0 for every other scheme — their drivers
  /// reset the knob, so budget changes never fragment their namespaces).
  u64 opt_budget = 0;
  /// Resolved e-graph pass saturation budget (0 whenever the pass is off —
  /// canonical_options pins it, so pass-off namespaces never fragment).
  u64 xform_budget = 0;
  std::int32_t l_max = 0;
  std::int32_t depth_limit = 0;
  std::uint8_t rep = 0;
  std::uint8_t cse_on_seed = 0;
  std::uint8_t recursive_levels = 0;
  std::uint8_t scheme = 0;  // core::Scheme of the plan (cache namespace)
  /// 1 when the e-graph pass ran over the stored plan. Pass-on and
  /// pass-off entries are disjoint namespaces: a pass-off probe must never
  /// rehydrate a rewritten plan, and vice versa.
  std::uint8_t xform = 0;

  bool operator==(const SolveOptionsTag&) const = default;
};

/// Tag of an MrpOptions-level (mrp_optimize) solve: the scheme is derived
/// from cse_on_seed, every other field is taken verbatim.
SolveOptionsTag options_tag(const core::MrpOptions& options);

/// Tag of a flow-level solve: options are normalized through the scheme's
/// driver (knobs the scheme ignores reset, knobs it forces pinned — see
/// SchemeDriver::canonical_options) before tagging, so irrelevant knob
/// changes never fragment the cache.
SolveOptionsTag options_tag(core::Scheme scheme,
                            const core::MrpOptions& options);

/// content_hash of an already-canonical value vector (the persistence load
/// path re-derives hashes instead of trusting the file).
u64 canonical_content_hash(const std::vector<i64>& canonical_values);

/// 64-bit solve fingerprint: content_hash of the canonical bank mixed with
/// the scheme+options tag. Two (bank, scheme, options) triples with equal
/// keys are intended to share one cache entry; SolveCache still verifies
/// the canonical words and tag before trusting a hit.
u64 solve_key(u64 content_hash, const SolveOptionsTag& tag);
u64 solve_key(const CanonicalBank& canonical,
              const core::MrpOptions& options);
u64 solve_key(core::Scheme scheme, const std::vector<i64>& bank,
              const core::MrpOptions& options);

}  // namespace mrpf::cache
