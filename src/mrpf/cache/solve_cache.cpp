#include "mrpf/cache/solve_cache.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "mrpf/common/error.hpp"

namespace mrpf::cache {

namespace {

using Clock = std::chrono::steady_clock;

u64 elapsed_ns(Clock::time_point start) {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              Clock::now() - start)
                              .count());
}

std::size_t cse_bytes(const cse::CseResult& cse) {
  std::size_t bytes = sizeof(cse);
  bytes += cse.subexpressions.size() * sizeof(cse::Subexpression);
  bytes += cse.constants.size() * sizeof(i64);
  for (const auto& expr : cse.expressions) {
    bytes += sizeof(expr) + expr.size() * sizeof(cse::Term);
  }
  return bytes;
}

/// Identity back-references of a canonical vector: values[i] == values[i]
/// << 0, positive — what extract_primaries yields for the canonical bank.
std::vector<core::PrimaryBank::Ref> identity_refs(std::size_t n) {
  std::vector<core::PrimaryBank::Ref> refs(n);
  for (std::size_t i = 0; i < n; ++i) {
    refs[i] = {static_cast<int>(i), 0, false};
  }
  return refs;
}

bool is_identity_refs(const std::vector<core::PrimaryBank::Ref>& refs) {
  for (std::size_t i = 0; i < refs.size(); ++i) {
    if (refs[i].vertex != static_cast<int>(i) || refs[i].shift != 0 ||
        refs[i].negate) {
      return false;
    }
  }
  return true;
}

bool is_canonical_vector(const std::vector<i64>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] <= 0 || values[i] % 2 == 0) return false;
    if (i > 0 && values[i - 1] >= values[i]) return false;
  }
  return true;
}

/// Empty or all-zero: solving is cheaper than caching.
bool is_trivial_bank(const std::vector<i64>& values) {
  return std::all_of(values.begin(), values.end(),
                     [](i64 v) { return v == 0; });
}

/// The canonical form of a plan for storage. MRP schemes: re-index the
/// per-coefficient taps onto the canonical vertices (undoing each
/// coefficient's shift/sign back-reference) and reset the provenance to
/// identity refs — exactly the plan a fresh solve of the canonical bank
/// itself produces. Identity-group schemes: the plan verbatim.
core::SynthPlan canonical_plan_of(core::Scheme scheme, const CanonicalBank& cb,
                                  const core::SynthPlan& plan) {
  core::SynthPlan out = plan.clone();
  if (!uses_mrp_canonical_form(scheme)) return out;
  out.taps.assign(cb.values.size(), arch::Tap{});
  std::vector<char> filled(cb.values.size(), 0);
  for (std::size_t i = 0; i < cb.refs.size(); ++i) {
    const core::PrimaryBank::Ref& ref = cb.refs[i];
    if (ref.vertex < 0) continue;
    const auto v = static_cast<std::size_t>(ref.vertex);
    if (filled[v] != 0) continue;
    arch::Tap tap = plan.taps[i];
    tap.shift -= ref.shift;
    tap.negate = tap.negate != ref.negate;
    tap.constant = cb.values[v];
    out.taps[v] = tap;
    filled[v] = 1;
  }
  for (const char f : filled) {
    MRPF_CHECK(f != 0, "solve cache: bank does not cover every vertex");
  }
  if (out.mrp.has_value()) {
    out.mrp->bank.refs = identity_refs(cb.values.size());
  }
  return out;
}

/// Inverse of canonical_plan_of: maps a canonical MRP plan back onto the
/// requester's bank through its back-references — the same transform
/// core::build_mrp_block applies, so the rehydrated plan is
/// field-for-field identical to a fresh solve of `bank`.
void rehydrate_mrp_plan(const std::vector<i64>& bank, CanonicalBank&& cb,
                        core::SynthPlan& plan) {
  std::vector<arch::Tap> taps(bank.size());
  for (std::size_t i = 0; i < bank.size(); ++i) {
    const core::PrimaryBank::Ref& ref = cb.refs[i];
    if (ref.vertex < 0) {
      taps[i] = arch::Tap{-1, 0, false, 0};
      continue;
    }
    arch::Tap tap = plan.taps[static_cast<std::size_t>(ref.vertex)];
    tap.shift += ref.shift;
    tap.negate = tap.negate != ref.negate;
    tap.constant = bank[i];
    taps[i] = tap;
  }
  plan.taps = std::move(taps);
  if (plan.mrp.has_value()) plan.mrp->bank.refs = std::move(cb.refs);
}

}  // namespace

bool is_canonical_plan(const SolveOptionsTag& tag,
                       const std::vector<i64>& canonical,
                       const core::SynthPlan& plan) {
  if (tag.scheme >= static_cast<std::uint8_t>(core::kNumSchemes)) return false;
  const auto scheme = static_cast<core::Scheme>(tag.scheme);
  if (plan.scheme != scheme) return false;
  // Pass-tag hygiene: pass-off entries carry neither a resolved budget nor
  // xform provenance; pass-on tags always carry the resolved budget (the
  // canonical options pin it to >= 1 whenever the pass is on).
  if (tag.xform > 1) return false;
  if (tag.xform == 0 && (tag.xform_budget != 0 || plan.xform.has_value())) {
    return false;
  }
  if (tag.xform == 1 && tag.xform_budget == 0) return false;
  if (is_trivial_bank(canonical)) return false;  // never cached
  if (plan.taps.size() != canonical.size()) return false;
  if (uses_mrp_canonical_form(scheme)) {
    if (!is_canonical_vector(canonical)) return false;
    if (plan.cse.has_value()) return false;
    // kBnb carries MRP provenance only on its greedy-fallback path (an
    // exact search win has none); every other MRP-form scheme always does.
    if (scheme != core::Scheme::kBnb && !plan.mrp.has_value()) return false;
    if (plan.mrp.has_value()) {
      const core::MrpResult& mrp = *plan.mrp;
      if (mrp.vertices != canonical || mrp.bank.primaries != canonical) {
        return false;
      }
      if (mrp.bank.refs.size() != canonical.size() ||
          !is_identity_refs(mrp.bank.refs)) {
        return false;
      }
    }
  } else {
    if (plan.mrp.has_value()) return false;
    if (plan.cse.has_value() != (scheme == core::Scheme::kCse)) return false;
  }
  // Structural validation by construction: the ops must replay into a
  // graph and the taps must verifiably multiply by the canonical bank.
  try {
    core::lower_plan(canonical, plan);
  } catch (const Error&) {
    return false;
  }
  return true;
}

std::size_t approx_result_bytes(const core::MrpResult& result) {
  std::size_t bytes = sizeof(result);
  bytes += result.bank.primaries.size() * sizeof(i64);
  bytes += result.bank.refs.size() * sizeof(core::PrimaryBank::Ref);
  bytes += result.vertices.size() * sizeof(i64);
  bytes += result.solution_colors.size() * sizeof(i64);
  bytes += result.seed_values.size() * sizeof(i64);
  bytes += result.roots.size() * sizeof(int);
  bytes += result.vertex_depth.size() * sizeof(int);
  bytes += result.root_is_free.size();
  bytes += result.tree_edges.size() * sizeof(core::TreeEdge);
  if (result.seed_cse.has_value()) bytes += cse_bytes(*result.seed_cse);
  if (result.seed_recursive != nullptr) {
    bytes += approx_result_bytes(*result.seed_recursive);
  }
  return bytes;
}

std::size_t approx_plan_bytes(const core::SynthPlan& plan) {
  std::size_t bytes = sizeof(plan);
  bytes += plan.ops.size() * sizeof(arch::AdderOp);
  bytes += plan.taps.size() * sizeof(arch::Tap);
  if (plan.mrp.has_value()) bytes += approx_result_bytes(*plan.mrp);
  if (plan.cse.has_value()) bytes += cse_bytes(*plan.cse);
  return bytes;
}

SolveCache::SolveCache(const SolveCacheConfig& config)
    : config_{std::max<std::size_t>(config.max_bytes, 1),
              std::max(config.shards, 1)},
      shards_(static_cast<std::size_t>(std::max(config.shards, 1))) {}

void SolveCache::count_lookup(core::Scheme scheme, bool hit) {
  const auto s = static_cast<std::size_t>(scheme);
  if (hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    scheme_hits_[s].fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    scheme_misses_[s].fetch_add(1, std::memory_order_relaxed);
  }
}

bool SolveCache::try_get_plan(const std::vector<i64>& bank,
                              core::Scheme scheme,
                              const core::MrpOptions& options,
                              core::SynthPlan& out) {
  const auto start = Clock::now();
  CanonicalBank cb = canonicalize(scheme, bank);
  if (is_trivial_bank(cb.values)) {
    // Trivial (empty/all-zero) bank: solving is cheaper than caching, but
    // the lookup still happened — account for it so hits + misses +
    // trivial always equals the lookup count and lookup_ns stays honest.
    trivial_.fetch_add(1, std::memory_order_relaxed);
    lookup_ns_.fetch_add(elapsed_ns(start), std::memory_order_relaxed);
    return false;
  }
  const SolveOptionsTag tag = options_tag(scheme, options);
  const u64 key = cache::solve_key(cb.content_hash, tag);
  Shard& shard = shard_of(key);
  bool hit = false;
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    // Verify, never trust the hash: a different canonical vector or
    // options tag under the same 64-bit key is a miss.
    if (it != shard.index.end() && it->second->tag == tag &&
        it->second->canonical == cb.values) {
      shard.lru.splice(shard.lru.end(), shard.lru, it->second);  // touch
      out = it->second->plan.clone();
      hit = true;
    }
  }
  if (hit && uses_mrp_canonical_form(scheme)) {
    // Rehydrate: the stored plan is canonical (per-vertex taps, identity
    // refs); only the per-coefficient back-transform depends on the
    // original vector. Identity-group plans are exact as stored.
    rehydrate_mrp_plan(bank, std::move(cb), out);
  }
  count_lookup(scheme, hit);
  lookup_ns_.fetch_add(elapsed_ns(start), std::memory_order_relaxed);
  return hit;
}

void SolveCache::put_plan(const std::vector<i64>& bank, core::Scheme scheme,
                          const core::MrpOptions& options,
                          const core::SynthPlan& plan) {
  const auto start = Clock::now();
  CanonicalBank cb = canonicalize(scheme, bank);
  if (is_trivial_bank(cb.values)) return;
  MRPF_CHECK(plan.scheme == scheme,
             "solve cache: plan scheme does not match the offer");
  MRPF_CHECK(plan.taps.size() == bank.size(),
             "solve cache: plan does not belong to this bank");
  if (uses_mrp_canonical_form(scheme)) {
    MRPF_CHECK(plan.mrp.has_value() || scheme == core::Scheme::kBnb,
               "solve cache: MRP-form plan is missing its provenance");
    MRPF_CHECK(!plan.mrp.has_value() || plan.mrp->vertices == cb.values,
               "solve cache: result does not belong to this bank");
  }
  const SolveOptionsTag tag = options_tag(scheme, options);
  const u64 key = cache::solve_key(cb.content_hash, tag);
  {
    // Idempotent re-offer: the flow layer and mrp_optimize's internal
    // memoization can both publish the same solve — the second offer is
    // a no-op (and not an insert), so counters stay one-insert-per-miss.
    Shard& shard = shard_of(key);
    const std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it != shard.index.end() && it->second->tag == tag &&
        it->second->canonical == cb.values) {
      return;
    }
  }
  Entry entry;
  entry.tag = tag;
  entry.key = key;
  entry.plan = canonical_plan_of(scheme, cb, plan);
  entry.canonical = std::move(cb.values);
  entry.bytes = approx_plan_bytes(entry.plan) +
                entry.canonical.size() * sizeof(i64) + sizeof(Entry);
  insert_entry(std::move(entry));
  insert_ns_.fetch_add(elapsed_ns(start), std::memory_order_relaxed);
}

u64 SolveCache::plan_key(const std::vector<i64>& bank, core::Scheme scheme,
                         const core::MrpOptions& options) const {
  return cache::solve_key(scheme, bank, options);
}

bool SolveCache::insert_canonical(const SolveOptionsTag& tag,
                                  std::vector<i64> canonical,
                                  core::SynthPlan plan) {
  // The load path validates instead of trusting the file: the vector must
  // obey the scheme's canonical form and the plan must be *its* canonical
  // plan (replayable through the shared lowering path).
  if (!is_canonical_plan(tag, canonical, plan)) return false;
  Entry entry;
  entry.tag = tag;
  entry.key = cache::solve_key(canonical_content_hash(canonical), tag);
  entry.canonical = std::move(canonical);
  entry.plan = std::move(plan);
  entry.bytes = approx_plan_bytes(entry.plan) +
                entry.canonical.size() * sizeof(i64) + sizeof(Entry);
  insert_entry(std::move(entry));
  return true;
}

void SolveCache::insert_entry(Entry&& entry) {
  Shard& shard = shard_of(entry.key);
  const std::size_t budget = config_.max_bytes / shards_.size();
  u64 evicted = 0;
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(entry.key);
    if (it != shard.index.end()) {
      // Same key already cached (a racing worker solved it first, or a
      // true 64-bit collision): newest wins, footprint re-accounted.
      shard.bytes -= it->second->bytes;
      shard.lru.erase(it->second);
      shard.index.erase(it);
    }
    shard.bytes += entry.bytes;
    const u64 key = entry.key;
    shard.lru.push_back(std::move(entry));
    shard.index[key] = std::prev(shard.lru.end());
    while (shard.bytes > budget && shard.lru.size() > 1) {
      const Entry& oldest = shard.lru.front();
      shard.bytes -= oldest.bytes;
      shard.index.erase(oldest.key);
      shard.lru.pop_front();
      ++evicted;
    }
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  if (evicted > 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
}

CacheStats SolveCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.trivial = trivial_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.lookup_ns =
      static_cast<double>(lookup_ns_.load(std::memory_order_relaxed));
  s.insert_ns =
      static_cast<double>(insert_ns_.load(std::memory_order_relaxed));
  for (std::size_t i = 0; i < scheme_hits_.size(); ++i) {
    s.scheme_hits[i] = scheme_hits_[i].load(std::memory_order_relaxed);
    s.scheme_misses[i] = scheme_misses_[i].load(std::memory_order_relaxed);
  }
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    s.entries += shard.lru.size();
    s.bytes += shard.bytes;
  }
  return s;
}

void SolveCache::clear() {
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

void SolveCache::for_each(
    const std::function<void(const StoredSolve&)>& fn) const {
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    for (const Entry& entry : shard.lru) {
      StoredSolve view;
      view.key = entry.key;
      view.tag = entry.tag;
      view.canonical = &entry.canonical;
      view.plan = &entry.plan;
      fn(view);
    }
  }
}

}  // namespace mrpf::cache
