#include "mrpf/cache/solve_cache.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "mrpf/common/error.hpp"

namespace mrpf::cache {

namespace {

using Clock = std::chrono::steady_clock;

u64 elapsed_ns(Clock::time_point start) {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              Clock::now() - start)
                              .count());
}

std::size_t cse_bytes(const cse::CseResult& cse) {
  std::size_t bytes = sizeof(cse);
  bytes += cse.subexpressions.size() * sizeof(cse::Subexpression);
  bytes += cse.constants.size() * sizeof(i64);
  for (const auto& expr : cse.expressions) {
    bytes += sizeof(expr) + expr.size() * sizeof(cse::Term);
  }
  return bytes;
}

/// Identity back-references of a canonical vector: values[i] == values[i]
/// << 0, positive — what extract_primaries yields for the canonical bank.
std::vector<core::PrimaryBank::Ref> identity_refs(std::size_t n) {
  std::vector<core::PrimaryBank::Ref> refs(n);
  for (std::size_t i = 0; i < n; ++i) {
    refs[i] = {static_cast<int>(i), 0, false};
  }
  return refs;
}

bool is_identity_refs(const std::vector<core::PrimaryBank::Ref>& refs) {
  for (std::size_t i = 0; i < refs.size(); ++i) {
    if (refs[i].vertex != static_cast<int>(i) || refs[i].shift != 0 ||
        refs[i].negate) {
      return false;
    }
  }
  return true;
}

bool is_canonical_vector(const std::vector<i64>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] <= 0 || values[i] % 2 == 0) return false;
    if (i > 0 && values[i - 1] >= values[i]) return false;
  }
  return true;
}

}  // namespace

bool is_canonical_solve(const std::vector<i64>& canonical,
                        const core::MrpResult& result) {
  if (!is_canonical_vector(canonical)) return false;
  if (result.vertices != canonical || result.bank.primaries != canonical) {
    return false;
  }
  return result.bank.refs.size() == canonical.size() &&
         is_identity_refs(result.bank.refs);
}

std::size_t approx_result_bytes(const core::MrpResult& result) {
  std::size_t bytes = sizeof(result);
  bytes += result.bank.primaries.size() * sizeof(i64);
  bytes += result.bank.refs.size() * sizeof(core::PrimaryBank::Ref);
  bytes += result.vertices.size() * sizeof(i64);
  bytes += result.solution_colors.size() * sizeof(i64);
  bytes += result.seed_values.size() * sizeof(i64);
  bytes += result.roots.size() * sizeof(int);
  bytes += result.vertex_depth.size() * sizeof(int);
  bytes += result.root_is_free.size();
  bytes += result.tree_edges.size() * sizeof(core::TreeEdge);
  if (result.seed_cse.has_value()) bytes += cse_bytes(*result.seed_cse);
  if (result.seed_recursive != nullptr) {
    bytes += approx_result_bytes(*result.seed_recursive);
  }
  return bytes;
}

SolveCache::SolveCache(const SolveCacheConfig& config)
    : config_{std::max<std::size_t>(config.max_bytes, 1),
              std::max(config.shards, 1)},
      shards_(static_cast<std::size_t>(std::max(config.shards, 1))) {}

bool SolveCache::try_get(const std::vector<i64>& bank,
                         const core::MrpOptions& options,
                         core::MrpResult& out) {
  const auto start = Clock::now();
  CanonicalBank cb = canonicalize(bank);
  if (cb.values.empty()) {
    // Trivial (empty/all-zero) bank: solving is cheaper than caching, but
    // the lookup still happened — account for it so hits + misses +
    // trivial always equals the lookup count and lookup_ns stays honest.
    trivial_.fetch_add(1, std::memory_order_relaxed);
    lookup_ns_.fetch_add(elapsed_ns(start), std::memory_order_relaxed);
    return false;
  }
  const SolveOptionsTag tag = options_tag(options);
  const u64 key = cache::solve_key(cb.content_hash, tag);
  Shard& shard = shard_of(key);
  bool hit = false;
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    // Verify, never trust the hash: a different canonical vector or
    // options tag under the same 64-bit key is a miss.
    if (it != shard.index.end() && it->second->tag == tag &&
        it->second->canonical == cb.values) {
      shard.lru.splice(shard.lru.end(), shard.lru, it->second);  // touch
      out = it->second->result.clone();
      hit = true;
    }
  }
  if (hit) {
    // Rehydrate: the stored solve is canonical (identity refs); only the
    // per-coefficient back-transform depends on the original vector.
    out.bank.refs = std::move(cb.refs);
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  lookup_ns_.fetch_add(elapsed_ns(start), std::memory_order_relaxed);
  return hit;
}

void SolveCache::put(const std::vector<i64>& bank,
                     const core::MrpOptions& options,
                     const core::MrpResult& result) {
  const auto start = Clock::now();
  CanonicalBank cb = canonicalize(bank);
  if (cb.values.empty()) return;
  MRPF_CHECK(result.vertices == cb.values,
             "solve cache: result does not belong to this bank");
  Entry entry;
  entry.tag = options_tag(options);
  entry.key = cache::solve_key(cb.content_hash, entry.tag);
  entry.canonical = std::move(cb.values);
  entry.result = result.clone();
  entry.result.bank.refs = identity_refs(entry.canonical.size());
  entry.bytes = approx_result_bytes(entry.result) +
                entry.canonical.size() * sizeof(i64) + sizeof(Entry);
  insert_entry(std::move(entry));
  insert_ns_.fetch_add(elapsed_ns(start), std::memory_order_relaxed);
}

u64 SolveCache::solve_key(const std::vector<i64>& bank,
                          const core::MrpOptions& options) const {
  return cache::solve_key(canonicalize(bank), options);
}

bool SolveCache::insert_canonical(const SolveOptionsTag& tag,
                                  std::vector<i64> canonical,
                                  core::MrpResult result) {
  // The load path validates instead of trusting the file: the vector must
  // be canonical and the result must be *its* canonical solve.
  if (!is_canonical_solve(canonical, result)) return false;
  Entry entry;
  entry.tag = tag;
  entry.key = cache::solve_key(canonical_content_hash(canonical), tag);
  entry.canonical = std::move(canonical);
  entry.result = std::move(result);
  entry.bytes = approx_result_bytes(entry.result) +
                entry.canonical.size() * sizeof(i64) + sizeof(Entry);
  insert_entry(std::move(entry));
  return true;
}

void SolveCache::insert_entry(Entry&& entry) {
  Shard& shard = shard_of(entry.key);
  const std::size_t budget = config_.max_bytes / shards_.size();
  u64 evicted = 0;
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(entry.key);
    if (it != shard.index.end()) {
      // Same key already cached (a racing worker solved it first, or a
      // true 64-bit collision): newest wins, footprint re-accounted.
      shard.bytes -= it->second->bytes;
      shard.lru.erase(it->second);
      shard.index.erase(it);
    }
    shard.bytes += entry.bytes;
    const u64 key = entry.key;
    shard.lru.push_back(std::move(entry));
    shard.index[key] = std::prev(shard.lru.end());
    while (shard.bytes > budget && shard.lru.size() > 1) {
      const Entry& oldest = shard.lru.front();
      shard.bytes -= oldest.bytes;
      shard.index.erase(oldest.key);
      shard.lru.pop_front();
      ++evicted;
    }
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  if (evicted > 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
}

CacheStats SolveCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.trivial = trivial_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.lookup_ns =
      static_cast<double>(lookup_ns_.load(std::memory_order_relaxed));
  s.insert_ns =
      static_cast<double>(insert_ns_.load(std::memory_order_relaxed));
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    s.entries += shard.lru.size();
    s.bytes += shard.bytes;
  }
  return s;
}

void SolveCache::clear() {
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

void SolveCache::for_each(
    const std::function<void(const StoredSolve&)>& fn) const {
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    for (const Entry& entry : shard.lru) {
      StoredSolve view;
      view.key = entry.key;
      view.tag = entry.tag;
      view.canonical = &entry.canonical;
      view.result = &entry.result;
      fn(view);
    }
  }
}

}  // namespace mrpf::cache
