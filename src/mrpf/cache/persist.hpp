// Persistent on-disk store for the solve cache.
//
// File layout (little-endian):
//
//   u64 magic "MRPFCSH1"   u32 format version   u32 reserved (0)
//   u64 entry_count
//   entry_count × [ scheme+options tag | canonical vector |
//                   result_serde plan frame ]
//   u64 fnv1a64 checksum over every preceding byte
//
// Loading is all-or-nothing and trust-nothing: bad magic, an unknown
// version, a checksum mismatch, a truncated entry, a non-canonical vector
// or a plan that is not the canonical plan of its vector all reject the
// *whole file* — load_solve_cache returns false and the cache is left
// untouched, so a corrupt or stale store silently degrades to a cold
// cache, never to wrong data. Version 1 files (PR-3's MrpResult-only
// format), version 2 files (20-byte tag without opt_budget) and version 3
// files (28-byte tag without the e-graph pass fields) fail the version
// check and are rejected cleanly.
#pragma once

#include <cstdint>
#include <string>

#include "mrpf/cache/solve_cache.hpp"

namespace mrpf::cache {

inline constexpr u64 kCacheFileMagic = 0x31485343'4650524DULL;  // "MRPFCSH1"
inline constexpr std::uint32_t kCacheFileVersion = 4;

/// Serializes every cache entry to `path` (atomically enough for the
/// flow: written to a temp sibling, then renamed). Returns false on I/O
/// failure.
bool save_solve_cache(const SolveCache& cache, const std::string& path);

/// Loads `path` into `cache`. Returns false — leaving `cache` unchanged —
/// if the file is missing, truncated, corrupt, or written by a different
/// format version. Entries go through SolveCache::insert_canonical, so
/// normal LRU budgeting applies.
bool load_solve_cache(SolveCache& cache, const std::string& path);

}  // namespace mrpf::cache
