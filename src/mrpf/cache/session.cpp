#include "mrpf/cache/session.hpp"

#include <cstdlib>
#include <string>
#include <utility>

#include "mrpf/cache/persist.hpp"
#include "mrpf/common/env.hpp"

namespace mrpf::cache {

namespace {

void warn_malformed_once(const char* value) {
  env::warn_once("MRPF_CACHE",
                 "mrpf: ignoring malformed MRPF_CACHE value \"" +
                     std::string(value) +
                     "\" (expected \"off\", \"0\", or a capacity in MiB)");
}

}  // namespace

CacheEnvConfig parse_cache_env(const char* value, bool* malformed) {
  // One grammar, owned by common/env (shared with env::snapshot_knobs so
  // the daemon's startup snapshot and this lazy per-session read can
  // never diverge).
  const env::ParsedCacheKnob parsed = env::parse_cache_knob(value);
  if (malformed != nullptr) *malformed = !parsed.well_formed;
  CacheEnvConfig config;
  config.disabled = parsed.disabled;
  config.max_bytes = parsed.max_bytes;
  return config;
}

SolveCacheSession::SolveCacheSession(std::string path, bool ignore_env,
                                     const SolveCacheConfig& config)
    : path_(std::move(path)) {
  SolveCacheConfig effective = config;
  if (!ignore_env) {
    const char* env = std::getenv("MRPF_CACHE");
    bool malformed = false;
    const CacheEnvConfig env_config = parse_cache_env(env, &malformed);
    if (malformed) warn_malformed_once(env);
    if (env_config.disabled) return;  // cache_ stays null
    if (env_config.max_bytes != 0) effective.max_bytes = env_config.max_bytes;
  }
  cache_ = std::make_unique<SolveCache>(effective);
  if (!path_.empty()) {
    warm_ = load_solve_cache(*cache_, path_);
  }
}

bool SolveCacheSession::save() const {
  if (cache_ == nullptr || path_.empty()) return true;
  return save_solve_cache(*cache_, path_);
}

}  // namespace mrpf::cache
