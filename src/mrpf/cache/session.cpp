#include "mrpf/cache/session.hpp"

#include <cstdlib>
#include <string>
#include <utility>

#include "mrpf/cache/persist.hpp"
#include "mrpf/common/env.hpp"

namespace mrpf::cache {

namespace {

void warn_malformed_once(const char* value) {
  env::warn_once("MRPF_CACHE",
                 "mrpf: ignoring malformed MRPF_CACHE value \"" +
                     std::string(value) +
                     "\" (expected \"off\", \"0\", or a capacity in MiB)");
}

}  // namespace

CacheEnvConfig parse_cache_env(const char* value, bool* malformed) {
  if (malformed != nullptr) *malformed = false;
  CacheEnvConfig config;
  if (value == nullptr || value[0] == '\0') return config;
  if (std::string(value) == "0" || env::equals_ignore_case(value, "off")) {
    config.disabled = true;
    return config;
  }
  // Shared env-knob grammar; capacity clamps to [1 MiB, 64 GiB] — absurd
  // values are almost certainly typos but a clamp keeps the knob forgiving.
  const env::ParsedInt mib = env::parse_positive_int(value, 65536);
  if (!mib.well_formed) {
    if (malformed != nullptr) *malformed = true;
    return config;
  }
  config.max_bytes = static_cast<std::size_t>(mib.value) << 20;
  return config;
}

SolveCacheSession::SolveCacheSession(std::string path, bool ignore_env,
                                     const SolveCacheConfig& config)
    : path_(std::move(path)) {
  SolveCacheConfig effective = config;
  if (!ignore_env) {
    const char* env = std::getenv("MRPF_CACHE");
    bool malformed = false;
    const CacheEnvConfig env_config = parse_cache_env(env, &malformed);
    if (malformed) warn_malformed_once(env);
    if (env_config.disabled) return;  // cache_ stays null
    if (env_config.max_bytes != 0) effective.max_bytes = env_config.max_bytes;
  }
  cache_ = std::make_unique<SolveCache>(effective);
  if (!path_.empty()) {
    warm_ = load_solve_cache(*cache_, path_);
  }
}

bool SolveCacheSession::save() const {
  if (cache_ == nullptr || path_.empty()) return true;
  return save_solve_cache(*cache_, path_);
}

}  // namespace mrpf::cache
