#include "mrpf/cache/session.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <utility>

#include "mrpf/cache/persist.hpp"

namespace mrpf::cache {

namespace {

bool equals_ignore_case(const std::string& s, const char* lower) {
  std::size_t i = 0;
  for (; s[i] != '\0' && lower[i] != '\0'; ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) != lower[i]) {
      return false;
    }
  }
  return s[i] == '\0' && lower[i] == '\0';
}

void warn_malformed_once(const char* value) {
  static std::once_flag flag;
  std::call_once(flag, [value] {
    std::fprintf(stderr,
                 "mrpf: ignoring malformed MRPF_CACHE value \"%s\" "
                 "(expected \"off\", \"0\", or a capacity in MiB)\n",
                 value);
  });
}

}  // namespace

CacheEnvConfig parse_cache_env(const char* value, bool* malformed) {
  if (malformed != nullptr) *malformed = false;
  CacheEnvConfig config;
  if (value == nullptr || value[0] == '\0') return config;
  const std::string s(value);
  if (s == "0" || equals_ignore_case(s, "off")) {
    config.disabled = true;
    return config;
  }
  char* end = nullptr;
  const long long mib = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || mib <= 0) {
    if (malformed != nullptr) *malformed = true;
    return config;
  }
  // Clamp to [1 MiB, 64 GiB]; absurd values are almost certainly typos
  // but a clamp keeps the knob forgiving.
  const long long clamped = mib > 65536 ? 65536 : mib;
  config.max_bytes = static_cast<std::size_t>(clamped) << 20;
  return config;
}

SolveCacheSession::SolveCacheSession(std::string path, bool ignore_env,
                                     const SolveCacheConfig& config)
    : path_(std::move(path)) {
  SolveCacheConfig effective = config;
  if (!ignore_env) {
    const char* env = std::getenv("MRPF_CACHE");
    bool malformed = false;
    const CacheEnvConfig env_config = parse_cache_env(env, &malformed);
    if (malformed) warn_malformed_once(env);
    if (env_config.disabled) return;  // cache_ stays null
    if (env_config.max_bytes != 0) effective.max_bytes = env_config.max_bytes;
  }
  cache_ = std::make_unique<SolveCache>(effective);
  if (!path_.empty()) {
    warm_ = load_solve_cache(*cache_, path_);
  }
}

bool SolveCacheSession::save() const {
  if (cache_ == nullptr || path_.empty()) return true;
  return save_solve_cache(*cache_, path_);
}

}  // namespace mrpf::cache
