// Lifecycle wrapper tying a SolveCache to its on-disk store.
//
// A session owns one SolveCache, warms it from `path` at construction
// (silently starting cold if the file is missing, corrupt, or stale), and
// writes it back on save(). The MRPF_CACHE environment variable is the
// operator override: `0` or `off` disables caching entirely (cache()
// returns nullptr), a positive integer overrides the capacity in MiB, and
// anything else warns once on stderr and falls back to defaults.
#pragma once

#include <memory>
#include <string>

#include "mrpf/cache/solve_cache.hpp"

namespace mrpf::cache {

/// Parsed MRPF_CACHE environment override.
struct CacheEnvConfig {
  bool disabled = false;
  /// Capacity override in bytes; 0 means "no override, use the default".
  std::size_t max_bytes = 0;
};

/// Parses an MRPF_CACHE-style value ("0"/"off"/"OFF" disable; positive
/// decimal integer = capacity in MiB, clamped to [1, 65536]). Returns
/// defaults and sets *malformed (when non-null) if the value parses as
/// none of these.
CacheEnvConfig parse_cache_env(const char* value, bool* malformed = nullptr);

class SolveCacheSession {
 public:
  /// Opens a session backed by `path` (may be empty for a purely
  /// in-memory session). Honors MRPF_CACHE unless `ignore_env` is set —
  /// tests pass true to pin behavior regardless of the environment.
  explicit SolveCacheSession(std::string path, bool ignore_env = false,
                             const SolveCacheConfig& config = {});

  SolveCacheSession(const SolveCacheSession&) = delete;
  SolveCacheSession& operator=(const SolveCacheSession&) = delete;
  SolveCacheSession(SolveCacheSession&&) = default;
  SolveCacheSession& operator=(SolveCacheSession&&) = default;

  /// The hook to hand to MrpOptions::cache; nullptr when MRPF_CACHE
  /// disabled the session (callers then just solve fresh).
  SolveCache* cache() { return cache_.get(); }
  const SolveCache* cache() const { return cache_.get(); }

  /// True when the backing file existed and loaded cleanly.
  bool warm() const { return warm_; }

  /// Persists the cache back to the path. No-op (returning true) for
  /// disabled or pathless sessions; false on I/O failure.
  bool save() const;

 private:
  std::string path_;
  std::unique_ptr<SolveCache> cache_;
  bool warm_ = false;
};

}  // namespace mrpf::cache
