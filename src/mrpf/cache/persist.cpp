#include "mrpf/cache/persist.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#include "mrpf/common/error.hpp"
#include "mrpf/common/hash.hpp"
#include "mrpf/io/result_serde.hpp"

namespace mrpf::cache {

namespace {

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int b = 0; b < 4; ++b) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }
}

void append_u64(std::vector<std::uint8_t>& out, u64 v) {
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }
}

void append_tag(std::vector<std::uint8_t>& out, const SolveOptionsTag& tag) {
  append_u64(out, tag.beta_bits);
  append_u64(out, tag.opt_budget);   // file version 3: tag grew to 28 bytes
  append_u64(out, tag.xform_budget); // file version 4: tag grew to 37 bytes
  append_u32(out, static_cast<std::uint32_t>(tag.l_max));
  append_u32(out, static_cast<std::uint32_t>(tag.depth_limit));
  out.push_back(tag.rep);
  out.push_back(tag.cse_on_seed);
  out.push_back(tag.recursive_levels);
  out.push_back(tag.scheme);
  out.push_back(tag.xform);
}

struct ByteReader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  // `pos <= size` first: `size - pos` underflows once a read overruns, and
  // an underflowed guard would wave every later bounds check through.
  bool need(std::size_t n) const { return pos <= size && n <= size - pos; }
  std::uint8_t u8() { return data[pos++]; }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int b = 0; b < 4; ++b) {
      v |= static_cast<std::uint32_t>(data[pos + b]) << (8 * b);
    }
    pos += 4;
    return v;
  }
  u64 u64v() {
    u64 v = 0;
    for (int b = 0; b < 8; ++b) {
      v |= static_cast<u64>(data[pos + b]) << (8 * b);
    }
    pos += 8;
    return v;
  }
};

}  // namespace

bool save_solve_cache(const SolveCache& cache, const std::string& path) {
  std::vector<std::uint8_t> buffer;
  append_u64(buffer, kCacheFileMagic);
  append_u32(buffer, kCacheFileVersion);
  append_u32(buffer, 0);  // reserved
  const std::size_t count_pos = buffer.size();
  append_u64(buffer, 0);  // entry count, patched below
  u64 count = 0;
  cache.for_each([&buffer, &count](const SolveCache::StoredSolve& entry) {
    append_tag(buffer, entry.tag);
    append_u64(buffer, entry.canonical->size());
    for (const i64 v : *entry.canonical) {
      append_u64(buffer, static_cast<u64>(v));
    }
    io::serialize_plan(*entry.plan, buffer);
    ++count;
  });
  for (int b = 0; b < 8; ++b) {
    buffer[count_pos + static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>(count >> (8 * b));
  }
  append_u64(buffer, fnv1a64(buffer.data(), buffer.size()));

  // Temp-then-rename so a crash mid-write leaves either the old store or
  // none — never a torn file that the loader would have to reject. The
  // temp name is unique per writer (pid + process-wide counter): two
  // processes — or two daemon shutdown paths — sharing one MRPF_CACHE
  // path used to race on a fixed `path + ".tmp"` sibling and could rename
  // a half-written peer file into place; now each writer stages its own
  // file and the final rename is the only shared step, which is atomic.
  static std::atomic<u64> save_counter{0};
  const std::string tmp = path + ".tmp." +
                          std::to_string(static_cast<long>(::getpid())) + "." +
                          std::to_string(save_counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(reinterpret_cast<const char*>(buffer.data()),
              static_cast<std::streamsize>(buffer.size()));
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool load_solve_cache(SolveCache& cache, const std::string& path) {
  std::vector<std::uint8_t> buffer;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) return false;
    const std::streamsize size = in.tellg();
    if (size < 32) return false;  // header + checksum minimum
    buffer.resize(static_cast<std::size_t>(size));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(buffer.data()), size);
    if (!in) return false;
  }

  // Whole-file checksum first: all-or-nothing, so a partially valid
  // prefix of a corrupt file can never leak entries into the cache.
  ByteReader r{buffer.data(), buffer.size() - 8};
  const u64 stored_checksum =
      [&buffer] {
        ByteReader tail{buffer.data(), buffer.size()};
        tail.pos = buffer.size() - 8;
        return tail.u64v();
      }();
  if (fnv1a64(buffer.data(), buffer.size() - 8) != stored_checksum) {
    return false;
  }
  if (!r.need(24)) return false;
  if (r.u64v() != kCacheFileMagic) return false;
  if (r.u32() != kCacheFileVersion) return false;
  r.u32();  // reserved
  if (!r.need(8)) return false;
  const u64 count = r.u64v();

  // Parse everything into staging before touching the cache.
  struct Staged {
    SolveOptionsTag tag;
    std::vector<i64> canonical;
    core::SynthPlan plan;
  };
  std::vector<Staged> staged;
  try {
    for (u64 e = 0; e < count; ++e) {
      Staged s;
      if (!r.need(37)) return false;  // tag: 3x u64 + 2x u32 + 5x u8
      s.tag.beta_bits = r.u64v();
      s.tag.opt_budget = r.u64v();
      s.tag.xform_budget = r.u64v();
      s.tag.l_max = static_cast<std::int32_t>(r.u32());
      s.tag.depth_limit = static_cast<std::int32_t>(r.u32());
      s.tag.rep = r.u8();
      s.tag.cse_on_seed = r.u8();
      s.tag.recursive_levels = r.u8();
      s.tag.scheme = r.u8();
      s.tag.xform = r.u8();
      if (!r.need(8)) return false;
      const u64 n = r.u64v();
      if (n > (r.size - r.pos) / 8) return false;
      s.canonical.resize(static_cast<std::size_t>(n));
      for (u64 i = 0; i < n; ++i) {
        s.canonical[static_cast<std::size_t>(i)] =
            static_cast<i64>(r.u64v());
      }
      s.plan = io::deserialize_plan(r.data, r.size, r.pos);
      staged.push_back(std::move(s));
    }
  } catch (const Error&) {
    return false;  // malformed plan frame
  }
  if (r.pos != r.size) return false;  // trailing bytes before the checksum

  // Dry-run validation first so a checksum-valid but semantically invalid
  // (e.g. handcrafted) store rejects without touching the cache at all.
  for (const Staged& s : staged) {
    if (!is_canonical_plan(s.tag, s.canonical, s.plan)) return false;
  }
  for (Staged& s : staged) {
    const bool ok = cache.insert_canonical(s.tag, std::move(s.canonical),
                                           std::move(s.plan));
    MRPF_CHECK(ok, "solve cache: validated entry rejected on insert");
  }
  return true;
}

}  // namespace mrpf::cache
