// Sharded in-memory LRU cache of canonical MRP solves.
//
// Keyed by the 64-bit solve fingerprint (fingerprint.hpp), N-way sharded
// with one mutex and one intrusive LRU list per shard, so the PR-2 batch
// runners can hammer it from every worker with no global lock. Entries
// store the *canonical* solve (identity back-references); a hit deep-copies
// it and swaps in the requester's own back-transform, which makes the
// rehydrated result field-for-field identical to a fresh solve of the
// original bank. Lookups verify the stored canonical words and options tag
// — a 64-bit key collision degrades to a miss, never to wrong data.
//
// Counters (hit/miss/insert/evict plus wall ns, StageTimers-style) are
// process-cheap atomics; bench/perf_mrp_sweep exports a stats() snapshot
// into BENCH_mrp.json.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "mrpf/cache/fingerprint.hpp"
#include "mrpf/core/mrp.hpp"

namespace mrpf::cache {

/// Monotonic counters plus a point-in-time size snapshot.
struct CacheStats {
  u64 hits = 0;
  u64 misses = 0;
  u64 trivial = 0;  // lookups for empty/all-zero banks (never cached)
  u64 inserts = 0;
  u64 evictions = 0;
  u64 entries = 0;       // snapshot
  u64 bytes = 0;         // snapshot (approximate footprint)
  double lookup_ns = 0;  // total wall ns inside try_get
  double insert_ns = 0;  // total wall ns inside put
};

struct SolveCacheConfig {
  /// Approximate total footprint budget, split evenly across shards. Each
  /// shard always keeps its most recent entry, even when oversized.
  std::size_t max_bytes = std::size_t{256} << 20;
  /// Number of independent (mutex, LRU, index) shards; clamped to >= 1.
  int shards = 16;
};

class SolveCache final : public core::SolveCacheHook {
 public:
  explicit SolveCache(const SolveCacheConfig& config = {});
  ~SolveCache() override = default;

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  // core::SolveCacheHook
  bool try_get(const std::vector<i64>& bank, const core::MrpOptions& options,
               core::MrpResult& out) override;
  void put(const std::vector<i64>& bank, const core::MrpOptions& options,
           const core::MrpResult& result) override;
  u64 solve_key(const std::vector<i64>& bank,
                const core::MrpOptions& options) const override;

  CacheStats stats() const;
  void clear();

  std::size_t max_bytes() const { return config_.max_bytes; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// One entry as seen by the persistence layer (borrowed views — valid
  /// only inside the for_each callback, which runs under the shard lock).
  struct StoredSolve {
    u64 key = 0;
    SolveOptionsTag tag;
    const std::vector<i64>* canonical = nullptr;
    const core::MrpResult* result = nullptr;
  };

  /// Visits every entry, shard by shard, oldest first within a shard.
  void for_each(const std::function<void(const StoredSolve&)>& fn) const;

  /// Direct canonical insertion (persistence load path). Returns false —
  /// and stores nothing — unless `canonical` is a valid canonical vector
  /// and `result` is a canonical solve of it (vertices match, identity
  /// back-references). Counts as an insert, not a miss.
  bool insert_canonical(const SolveOptionsTag& tag, std::vector<i64> canonical,
                        core::MrpResult result);

 private:
  struct Entry {
    u64 key = 0;
    SolveOptionsTag tag;
    std::vector<i64> canonical;
    core::MrpResult result;  // canonical: identity bank back-references
    std::size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = oldest, back = most recent
    std::unordered_map<u64, std::list<Entry>::iterator> index;
    std::size_t bytes = 0;
  };

  Shard& shard_of(u64 key) {
    return shards_[static_cast<std::size_t>((key >> 17) ^ key) %
                   shards_.size()];
  }
  /// Inserts under the shard lock, then evicts oldest-first down to the
  /// per-shard budget (always keeping at least one entry).
  void insert_entry(Entry&& entry);

  SolveCacheConfig config_;
  std::vector<Shard> shards_;

  std::atomic<u64> hits_{0};
  std::atomic<u64> misses_{0};
  std::atomic<u64> trivial_{0};
  std::atomic<u64> inserts_{0};
  std::atomic<u64> evictions_{0};
  std::atomic<u64> lookup_ns_{0};
  std::atomic<u64> insert_ns_{0};
};

/// Approximate heap footprint of a solve result (used for LRU budgeting;
/// deliberately cheap, not exact).
std::size_t approx_result_bytes(const core::MrpResult& result);

/// True iff `canonical` is a valid canonical vector (sorted, unique, odd,
/// positive) and `result` is its canonical solve (matching vertices,
/// identity back-references) — the precondition of insert_canonical. The
/// persistence loader dry-runs this over a whole file before inserting
/// anything, so a rejected file leaves the cache untouched.
bool is_canonical_solve(const std::vector<i64>& canonical,
                        const core::MrpResult& result);

}  // namespace mrpf::cache
