// Sharded in-memory LRU cache of canonical synthesis plans — one cache,
// every scheme.
//
// Keyed by the 64-bit solve fingerprint (fingerprint.hpp — canonical bank
// + scheme + options tag), N-way sharded with one mutex and one intrusive
// LRU list per shard, so the PR-2 batch runners can hammer it from every
// worker with no global lock. Entries store the *canonical* plan (for the
// MRP schemes: taps per canonical vertex, identity back-references); a hit
// deep-copies it and swaps in the requester's own back-transform, which
// makes the rehydrated plan field-for-field identical to a fresh driver
// optimize of the original bank. Lookups verify the stored canonical words
// and options tag — a 64-bit key collision degrades to a miss, never to
// wrong data.
//
// Counters (hit/miss/insert/evict, per-scheme hit/miss, plus wall ns,
// StageTimers-style) are process-cheap atomics; bench/perf_mrp_sweep and
// bench/baseline_zoo export stats() snapshots into BENCH_mrp.json /
// BENCH_schemes.json.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "mrpf/cache/fingerprint.hpp"
#include "mrpf/core/mrp.hpp"
#include "mrpf/core/synth_plan.hpp"

namespace mrpf::cache {

/// Monotonic counters plus a point-in-time size snapshot.
struct CacheStats {
  u64 hits = 0;
  u64 misses = 0;
  u64 trivial = 0;  // lookups for empty/all-zero banks (never cached)
  u64 inserts = 0;
  u64 evictions = 0;
  u64 entries = 0;       // snapshot
  u64 bytes = 0;         // snapshot (approximate footprint)
  double lookup_ns = 0;  // total wall ns inside try_get_plan
  double insert_ns = 0;  // total wall ns inside put_plan
  /// Per-scheme breakdown of hits/misses, indexed by core::Scheme value.
  std::array<u64, core::kNumSchemes> scheme_hits{};
  std::array<u64, core::kNumSchemes> scheme_misses{};
};

struct SolveCacheConfig {
  /// Approximate total footprint budget, split evenly across shards. Each
  /// shard always keeps its most recent entry, even when oversized.
  std::size_t max_bytes = std::size_t{256} << 20;
  /// Number of independent (mutex, LRU, index) shards; clamped to >= 1.
  int shards = 16;
};

class SolveCache final : public core::SolveCacheHook {
 public:
  explicit SolveCache(const SolveCacheConfig& config = {});
  ~SolveCache() override = default;

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  // core::SolveCacheHook
  bool try_get_plan(const std::vector<i64>& bank, core::Scheme scheme,
                    const core::MrpOptions& options,
                    core::SynthPlan& out) override;
  void put_plan(const std::vector<i64>& bank, core::Scheme scheme,
                const core::MrpOptions& options,
                const core::SynthPlan& plan) override;
  u64 plan_key(const std::vector<i64>& bank, core::Scheme scheme,
               const core::MrpOptions& options) const override;

  CacheStats stats() const;
  void clear();

  std::size_t max_bytes() const { return config_.max_bytes; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// One entry as seen by the persistence layer (borrowed views — valid
  /// only inside the for_each callback, which runs under the shard lock).
  struct StoredSolve {
    u64 key = 0;
    SolveOptionsTag tag;
    const std::vector<i64>* canonical = nullptr;
    const core::SynthPlan* plan = nullptr;
  };

  /// Visits every entry, shard by shard, oldest first within a shard.
  void for_each(const std::function<void(const StoredSolve&)>& fn) const;

  /// Direct canonical insertion (persistence load path). Returns false —
  /// and stores nothing — unless (tag, canonical, plan) passes
  /// is_canonical_plan. Counts as an insert, not a miss.
  bool insert_canonical(const SolveOptionsTag& tag, std::vector<i64> canonical,
                        core::SynthPlan plan);

 private:
  struct Entry {
    u64 key = 0;
    SolveOptionsTag tag;
    std::vector<i64> canonical;
    core::SynthPlan plan;  // canonical form (see file comment)
    std::size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = oldest, back = most recent
    std::unordered_map<u64, std::list<Entry>::iterator> index;
    std::size_t bytes = 0;
  };

  Shard& shard_of(u64 key) {
    return shards_[static_cast<std::size_t>((key >> 17) ^ key) %
                   shards_.size()];
  }
  /// Inserts under the shard lock, then evicts oldest-first down to the
  /// per-shard budget (always keeping at least one entry).
  void insert_entry(Entry&& entry);
  void count_lookup(core::Scheme scheme, bool hit);

  SolveCacheConfig config_;
  std::vector<Shard> shards_;

  std::atomic<u64> hits_{0};
  std::atomic<u64> misses_{0};
  std::atomic<u64> trivial_{0};
  std::atomic<u64> inserts_{0};
  std::atomic<u64> evictions_{0};
  std::atomic<u64> lookup_ns_{0};
  std::atomic<u64> insert_ns_{0};
  std::array<std::atomic<u64>, core::kNumSchemes> scheme_hits_{};
  std::array<std::atomic<u64>, core::kNumSchemes> scheme_misses_{};
};

/// Approximate heap footprint of a solve result / plan (used for LRU
/// budgeting; deliberately cheap, not exact).
std::size_t approx_result_bytes(const core::MrpResult& result);
std::size_t approx_plan_bytes(const core::SynthPlan& plan);

/// True iff (tag, canonical, plan) is a valid canonical cache entry: the
/// scheme is in range and matches the plan's provenance (mrp present iff
/// an MRP scheme with matching canonical vertices and identity
/// back-references; cse present iff kCse), `canonical` obeys the scheme's
/// canonical form, and the plan's ops+taps replay through the shared
/// lowering path into a block that verifiably multiplies by `canonical`.
/// The persistence loader dry-runs this over a whole file before
/// inserting anything, so a rejected file leaves the cache untouched.
bool is_canonical_plan(const SolveOptionsTag& tag,
                       const std::vector<i64>& canonical,
                       const core::SynthPlan& plan);

}  // namespace mrpf::cache
