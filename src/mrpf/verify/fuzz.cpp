#include "mrpf/verify/fuzz.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "mrpf/arch/verilog.hpp"
#include "mrpf/common/bits.hpp"
#include "mrpf/common/env.hpp"
#include "mrpf/common/error.hpp"
#include "mrpf/common/format.hpp"
#include "mrpf/common/rng.hpp"
#include "mrpf/core/pass_manager.hpp"
#include "mrpf/core/scheme_driver.hpp"
#include "mrpf/exec/streaming.hpp"
#include "mrpf/io/json_report.hpp"
#include "mrpf/io/result_serde.hpp"
#include "mrpf/rtl/parser.hpp"
#include "mrpf/rtl/simulator.hpp"
#include "mrpf/sim/equivalence.hpp"
#include "mrpf/sim/workload.hpp"

namespace mrpf::verify {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::size_t oracle_index(Oracle o) { return static_cast<std::size_t>(o); }

/// Saturation budgets the generator draws for pass-on cases: small ones
/// exercise the budget-exhausted fallback, the large one lets small banks
/// saturate. Shared with the --xform forcing path so forced runs draw from
/// the same distribution.
constexpr long long kXformFuzzBudgets[] = {10'000, 60'000, 250'000};

/// Deterministic per-case hash: seeds the oracle stimuli, so a replayed
/// case (known only through its FuzzCase fields, not its run seed/index)
/// drives exactly the input streams the original run used.
u64 case_hash(const FuzzCase& c) {
  u64 h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](u64 v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (const i64 v : c.coefficients) mix(static_cast<u64>(v));
  for (const int a : c.align) mix(static_cast<u64>(a));
  mix(static_cast<u64>(c.scheme));
  mix(static_cast<u64>(c.input_bits));
  return h;
}

/// The cost oracle's independent recount: replays the plan's ops with
/// plain (checked) integer arithmetic — no arch::AdderGraph involved — and
/// checks structural sanity, tap realization against the bank, and the
/// analytic-cost claim. Returns a one-line defect description or nullopt.
std::optional<std::string> recount_plan(const core::SynthPlan& plan,
                                        const std::vector<i64>& bank) {
  if (plan.taps.size() != bank.size()) {
    return str_format("plan has %zu taps for a %zu-coefficient bank",
                      plan.taps.size(), bank.size());
  }
  if (plan.analytic_adders < 0) {
    return str_format("negative analytic adder cost %d", plan.analytic_adders);
  }
  constexpr i64 kMaxFundamental = (i64{1} << 62) - 1;
  const int n_ops = static_cast<int>(plan.ops.size());
  std::vector<i64> fund;
  fund.reserve(static_cast<std::size_t>(n_ops) + 1);
  fund.push_back(1);  // node 0: the input x
  for (int k = 0; k < n_ops; ++k) {
    const arch::AdderOp& op = plan.ops[k];
    if (op.a < 0 || op.a > k || op.b < 0 || op.b > k) {
      return str_format("op %d references a node that does not exist yet", k);
    }
    if (op.shift_a < 0 || op.shift_a > 62 || op.shift_b < 0 ||
        op.shift_b > 62) {
      return str_format("op %d has a wiring shift outside [0, 62]", k);
    }
    const i128 a = static_cast<i128>(fund[static_cast<std::size_t>(op.a)])
                   << op.shift_a;
    const i128 b = static_cast<i128>(fund[static_cast<std::size_t>(op.b)])
                   << op.shift_b;
    const i128 v = op.subtract ? a - b : a + b;
    if (v == 0) return str_format("op %d computes a zero fundamental", k);
    if (v > kMaxFundamental || v < -kMaxFundamental) {
      return str_format("op %d overflows the 62-bit fundamental range", k);
    }
    fund.push_back(static_cast<i64>(v));
  }
  for (std::size_t i = 0; i < bank.size(); ++i) {
    const arch::Tap& tap = plan.taps[i];
    if (tap.constant != bank[i]) {
      return str_format("tap %zu records constant %lld, bank holds %lld", i,
                        static_cast<long long>(tap.constant),
                        static_cast<long long>(bank[i]));
    }
    if (tap.node < 0) {
      if (bank[i] != 0) {
        return str_format("tap %zu is the zero tap but bank holds %lld", i,
                          static_cast<long long>(bank[i]));
      }
      continue;
    }
    if (tap.node > n_ops) {
      return str_format("tap %zu references node %d of a %d-node graph", i,
                        tap.node, n_ops + 1);
    }
    if (tap.shift > 62 || tap.shift < -62) {
      return str_format("tap %zu has shift %d outside [-62, 62]", i,
                        tap.shift);
    }
    i128 v = fund[static_cast<std::size_t>(tap.node)];
    if (tap.shift >= 0) {
      v <<= tap.shift;
    } else {
      const i128 div = i128{1} << -tap.shift;
      if (v % div != 0) {
        return str_format("tap %zu right-shifts away nonzero bits", i);
      }
      v /= div;
    }
    if (tap.negate) v = -v;
    if (v != static_cast<i128>(bank[i])) {
      return str_format("tap %zu realizes %lld, bank holds %lld", i,
                        static_cast<long long>(static_cast<i64>(v)),
                        static_cast<long long>(bank[i]));
    }
  }
  if (n_ops > plan.analytic_adders) {
    return str_format(
        "replayed graph holds %d adders but the analytic cost claims %d",
        n_ops, plan.analytic_adders);
  }
  return std::nullopt;
}

// The deep-equality helpers (cse/mrp/block/stream/plan mismatch) the
// oracles lean on live in core/plan_equality — shared with the serve
// bench and the gtest helpers, pulled in through fuzz.hpp.

std::string join_i64(const std::vector<i64>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ",";
    out += str_format("%lld", static_cast<long long>(v[i]));
  }
  return out;
}

std::string join_int(const std::vector<int>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ",";
    out += str_format("%d", v[i]);
  }
  return out;
}

std::string json_i64_array(const std::vector<i64>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ", ";
    out += str_format("%lld", static_cast<long long>(v[i]));
  }
  return out + "]";
}

}  // namespace

const std::array<Oracle, kNumOracles>& all_oracles() {
  static const std::array<Oracle, kNumOracles> oracles = {
      Oracle::kCost, Oracle::kSim, Oracle::kRtl, Oracle::kSerde,
      Oracle::kExec, Oracle::kXform};
  return oracles;
}

std::string to_string(Oracle oracle) {
  switch (oracle) {
    case Oracle::kCost:
      return "cost";
    case Oracle::kSim:
      return "sim";
    case Oracle::kRtl:
      return "rtl";
    case Oracle::kSerde:
      return "serde";
    case Oracle::kExec:
      return "exec";
    case Oracle::kXform:
      return "xform";
  }
  return "unknown";
}

std::optional<Oracle> parse_oracle(std::string_view name) {
  for (const Oracle o : all_oracles()) {
    if (name == to_string(o)) return o;
  }
  return std::nullopt;
}

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kOpShift:
      return "shift";
    case FaultKind::kOpSubtract:
      return "subtract";
    case FaultKind::kTapNegate:
      return "tap";
    case FaultKind::kAnalyticCost:
      return "cost";
  }
  return "unknown";
}

std::optional<FaultKind> parse_fault(std::string_view name) {
  if (name == "none") return FaultKind::kNone;
  if (name == "shift" || name == "1") return FaultKind::kOpShift;
  if (name == "subtract") return FaultKind::kOpSubtract;
  if (name == "tap") return FaultKind::kTapNegate;
  if (name == "cost") return FaultKind::kAnalyticCost;
  return std::nullopt;
}

FaultKind fault_from_env() {
  const char* value = std::getenv("MRPF_FUZZ_INJECT");
  if (value == nullptr || value[0] == '\0') return FaultKind::kNone;
  const std::optional<FaultKind> parsed = parse_fault(value);
  if (!parsed.has_value()) {
    env::warn_once("MRPF_FUZZ_INJECT",
                   str_format("mrpf: MRPF_FUZZ_INJECT=\"%s\" is not a fault "
                              "kind (shift|subtract|tap|cost); not injecting",
                              value));
    return FaultKind::kNone;
  }
  return *parsed;
}

void inject_fault(core::SynthPlan& plan, FaultKind kind) {
  if (kind == FaultKind::kNone) return;
  // The op to corrupt: the one computing the first tap-referenced adder
  // node, so the corruption is guaranteed to be observable at an output
  // (a dangling node's fundamental could change without any tap noticing).
  int target_op = -1;
  for (const arch::Tap& tap : plan.taps) {
    if (tap.node >= 1) {
      target_op = tap.node - 1;
      break;
    }
  }
  if (kind == FaultKind::kOpShift && target_op >= 0) {
    plan.ops[static_cast<std::size_t>(target_op)].shift_a += 1;
    return;
  }
  if (kind == FaultKind::kOpSubtract && target_op >= 0) {
    arch::AdderOp& op = plan.ops[static_cast<std::size_t>(target_op)];
    op.subtract = !op.subtract;
    return;
  }
  if (kind == FaultKind::kTapNegate ||
      ((kind == FaultKind::kOpShift || kind == FaultKind::kOpSubtract) &&
       target_op < 0)) {
    // Fall back to a tap fault when the plan has no corruptible op.
    for (arch::Tap& tap : plan.taps) {
      if (tap.node >= 0 && tap.constant != 0) {
        tap.negate = !tap.negate;
        return;
      }
    }
    // No live tap either (all-zero bank): fall through to the cost fault.
  }
  // kAnalyticCost (and the last-resort fallback): claim one adder fewer
  // than the graph physically holds — only the cost oracle can see this.
  plan.analytic_adders = static_cast<int>(plan.ops.size()) - 1;
}

FuzzCase generate_case(std::uint64_t seed, std::size_t index,
                       const std::vector<core::Scheme>& schemes) {
  const std::vector<core::Scheme> pool =
      schemes.empty() ? std::vector<core::Scheme>(core::all_schemes().begin(),
                                                  core::all_schemes().end())
                      : schemes;
  // splitmix-style stream split: one independent generator per case.
  Rng rng(seed * 0x9E3779B97F4A7C15ULL +
          static_cast<std::uint64_t>(index) * 0xBF58476D1CE4E5B9ULL +
          0x94D049BB133111EBULL);
  FuzzCase c;
  c.scheme = pool[index % pool.size()];

  const int wordlength = static_cast<int>(rng.next_int(4, 20));
  const i64 limit = (i64{1} << (wordlength - 1)) - 1;
  const std::size_t n = static_cast<std::size_t>(rng.next_int(1, 16));
  const bool symmetric = n >= 2 && rng.next_below(4) == 0;
  const std::size_t gen_n = symmetric ? (n + 1) / 2 : n;

  std::vector<i64> half;
  half.reserve(gen_n);
  for (std::size_t i = 0; i < gen_n; ++i) {
    const u64 what = rng.next_below(10);
    i64 v = 0;
    if (what == 0) {
      v = 0;  // explicit zero coefficient
    } else if (what == 1 && !half.empty()) {
      v = half[rng.next_below(half.size())];  // duplicate
    } else if (what == 2) {
      // Near-limit magnitude (the overflow-adjacent corner).
      v = limit - static_cast<i64>(rng.next_below(3));
      if (rng.next_below(2) == 0) v = -v;
    } else if (what == 3) {
      // Pure power of two (free wiring, zero-adder tap).
      v = i64{1} << rng.next_below(static_cast<u64>(wordlength - 1));
      if (rng.next_below(2) == 0) v = -v;
    } else {
      v = rng.next_int(-limit, limit);
    }
    half.push_back(v);
  }
  bool any_nonzero = false;
  for (const i64 v : half) any_nonzero = any_nonzero || v != 0;
  if (!any_nonzero) {
    half[rng.next_below(half.size())] = rng.next_int(1, limit);
  }

  if (symmetric) {
    c.coefficients.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      c.coefficients.push_back(half[std::min(i, n - 1 - i)]);
    }
  } else {
    c.coefficients = std::move(half);
  }

  if (rng.next_below(10) < 3) {
    c.align.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      c.align.push_back(static_cast<int>(rng.next_below(5)));
    }
  }

  static constexpr double kBetas[] = {0.3, 0.5, 0.7};
  static constexpr int kDepths[] = {0, 2, 3};
  static constexpr number::NumberRep kReps[] = {
      number::NumberRep::kSpt, number::NumberRep::kCsd,
      number::NumberRep::kSignMagnitude};
  c.options.beta = kBetas[rng.next_below(3)];
  c.options.depth_limit = kDepths[rng.next_below(3)];
  c.options.recursive_levels = rng.next_below(4) == 0 ? 1 : 0;
  c.options.rep = kReps[rng.next_below(3)];
  c.input_bits = static_cast<int>(rng.next_int(6, 12));
  if (c.scheme == core::Scheme::kBnb) {
    // Drawn LAST and only for kBnb, so every other scheme's case stream is
    // byte-identical to the pre-bnb fuzzer and old replay lines stay valid.
    // Small budgets keep the sweep fast and exercise the kBudget fallback;
    // the large one lets small banks reach a proof.
    static constexpr long long kBudgets[] = {20'000, 100'000, 500'000};
    c.options.opt_budget = kBudgets[rng.next_below(3)];
  }
  // The e-graph pass draws come dead last (after even the kBnb-only
  // budget), so every pre-pass case stream stays byte-identical to the
  // older fuzzer and historical replay lines keep reproducing. A quarter
  // of cases run pass-on, with an explicit budget so replay does not
  // depend on MRPF_XFORM_BUDGET in the environment.
  if (rng.next_below(4) == 0) {
    c.options.passes.xform = true;
    c.options.passes.xform_budget = kXformFuzzBudgets[rng.next_below(3)];
  }
  return c;
}

CaseResult run_case(const FuzzCase& c, const FuzzConfig& config) {
  CaseResult out;
  const auto fail = [&out](Oracle o, std::string detail) {
    out.passed = false;
    out.failure = OracleFailure{o, std::move(detail)};
  };

  const std::vector<i64> bank = core::optimization_bank(c.coefficients);
  core::SynthPlan plan;
  core::SynthPlan pre_pass;  // the driver's plan before passes (xform oracle)
  bool pass_on = false;
  try {
    const core::SchemeDriver& driver = core::scheme_driver(c.scheme);
    const core::MrpOptions canonical = driver.canonical_options(c.options);
    plan = driver.optimize(bank, canonical);
    pass_on = canonical.passes.xform;
    if (pass_on) {
      pre_pass = plan.clone();
      core::apply_plan_passes(bank, canonical, plan);
    }
  } catch (const Error& e) {
    // A driver must synthesize every valid bank; an optimize-time throw is
    // itself a finding, attributed to the structural (cost) oracle.
    fail(Oracle::kCost, str_format("driver optimize threw: %s", e.what()));
    return out;
  }
  if (c.inject != FaultKind::kNone) inject_fault(plan, c.inject);

  const u64 stimulus_seed = case_hash(c);

  // The lowered filter, built lazily inside the first oracle that needs it
  // so a lowering throw is attributed to an enabled oracle.
  std::optional<arch::TdfFilter> filter;
  const auto lowered_filter = [&]() -> const arch::TdfFilter& {
    if (!filter.has_value()) {
      arch::MultiplierBlock block = core::lower_plan(bank, plan);
      filter.emplace(
          core::expand_block_to_tdf(c.coefficients, c.align, std::move(block)));
    }
    return *filter;
  };

  for (const Oracle oracle : all_oracles()) {
    const std::size_t oi = oracle_index(oracle);
    if (!config.oracles[oi]) continue;
    const std::uint64_t t0 = now_ns();
    try {
      switch (oracle) {
        case Oracle::kCost: {
          if (auto defect = recount_plan(plan, bank)) {
            fail(oracle, *defect);
          }
          break;
        }
        case Oracle::kSim: {
          const sim::EquivalenceReport r = sim::check_equivalence_suite(
              lowered_filter(), c.input_bits, config.sim_samples,
              stimulus_seed);
          if (!r.equivalent) fail(oracle, r.to_string());
          break;
        }
        case Oracle::kRtl: {
          const arch::TdfFilter& f = lowered_filter();
          const std::string verilog =
              arch::emit_tdf_filter(f, c.input_bits, "fuzz_dut");
          rtl::Simulator rtl_sim(rtl::parse_module(verilog));
          Rng rng(stimulus_seed ^ 0xF122F122F122F122ULL);
          const std::vector<i64> x =
              sim::uniform_stream(rng, config.rtl_samples, c.input_bits);
          const sim::EquivalenceReport r =
              sim::compare_streams(f.run(x), rtl_sim.run_filter(x));
          if (!r.equivalent) fail(oracle, "rtl vs model: " + r.to_string());
          break;
        }
        case Oracle::kSerde: {
          std::vector<std::uint8_t> buffer;
          io::serialize_plan(plan, buffer);
          std::size_t pos = 0;
          const core::SynthPlan round_trip =
              io::deserialize_plan(buffer.data(), buffer.size(), pos);
          if (pos != buffer.size()) {
            fail(oracle, "serde frame did not consume its exact length");
            break;
          }
          if (auto m = core::plan_mismatch(plan, round_trip)) {
            fail(oracle, "serde round-trip: " + *m);
            break;
          }
          // Re-lowered equivalence: the rehydrated plan must produce the
          // identical physical block.
          const arch::MultiplierBlock original = core::lower_plan(bank, plan);
          const arch::MultiplierBlock rehydrated =
              core::lower_plan(bank, round_trip);
          if (auto m = core::block_mismatch(original, rehydrated)) {
            fail(oracle, "serde round-trip: " + *m);
          }
          break;
        }
        case Oracle::kExec: {
          const arch::TdfFilter& f = lowered_filter();
          Rng rng(stimulus_seed ^ 0xE6ECE6ECE6ECE6ECULL);
          const std::vector<i64> x =
              sim::uniform_stream(rng, config.sim_samples, c.input_bits);
          const std::vector<i64> expect = f.run(x);

          exec::ExecConfig ec;
          ec.input_bits = c.input_bits;
          // Lane widths 3..16 cross the block boundary at varying offsets.
          ec.lanes = static_cast<int>(3 + rng.next_below(14));
          exec::StreamingFilter sf(f, ec);

          // Whole-stream push on a fresh filter.
          if (auto m = core::stream_mismatch(expect, sf.push(x), "exec push")) {
            fail(oracle, *m);
            break;
          }

          // Reset-replay in uneven chunks: state carried across push
          // boundaries must reproduce the same stream.
          sf.reset();
          std::vector<i64> chunked;
          chunked.reserve(x.size());
          std::size_t at = 0;
          while (at < x.size()) {
            const std::size_t take = std::min<std::size_t>(
                x.size() - at, 1 + rng.next_below(7));
            const std::vector<i64> part(
                x.begin() + static_cast<std::ptrdiff_t>(at),
                x.begin() + static_cast<std::ptrdiff_t>(at + take));
            const std::vector<i64> out = sf.push(part);
            chunked.insert(chunked.end(), out.begin(), out.end());
            at += take;
          }
          if (auto m = core::stream_mismatch(expect, chunked,
                                             "exec chunked push")) {
            fail(oracle, *m);
          }
          break;
        }
        case Oracle::kXform: {
          // Pass-off-vs-pass-on equivalence: when the case ran the e-graph
          // pass, the rewritten plan must not cost more adders than the
          // driver's, and both must lower to stream-identical filters.
          if (!pass_on) break;
          if (plan.analytic_adders > pre_pass.analytic_adders) {
            fail(oracle,
                 str_format("pass made the plan worse: %d adders vs %d",
                            plan.analytic_adders, pre_pass.analytic_adders));
            break;
          }
          arch::MultiplierBlock pre_block = core::lower_plan(bank, pre_pass);
          const arch::TdfFilter pre_filter = core::expand_block_to_tdf(
              c.coefficients, c.align, std::move(pre_block));
          Rng rng(stimulus_seed ^ 0x580A4F580A4F580AULL);
          const std::vector<i64> x =
              sim::uniform_stream(rng, config.sim_samples, c.input_bits);
          if (auto m = core::stream_mismatch(pre_filter.run(x),
                                             lowered_filter().run(x),
                                             "pass-on vs pass-off")) {
            fail(oracle, *m);
          }
          break;
        }
      }
    } catch (const Error& e) {
      fail(oracle, str_format("pipeline threw: %s", e.what()));
    }
    out.oracle_ns[oi] += now_ns() - t0;
    if (!out.passed) return out;
  }
  return out;
}

FuzzCase shrink_case(const FuzzCase& failing, const FuzzConfig& config,
                     std::size_t* evals_out) {
  std::size_t evals = 0;
  const auto still_fails = [&](const FuzzCase& candidate) {
    if (evals >= config.shrink_budget) return false;
    ++evals;
    return !run_case(candidate, config).passed;
  };
  const auto has_nonzero = [](const std::vector<i64>& v) {
    for (const i64 x : v) {
      if (x != 0) return true;
    }
    return false;
  };

  FuzzCase best = failing;
  bool improved = true;
  while (improved && evals < config.shrink_budget) {
    improved = false;
    const std::size_t n = best.coefficients.size();

    // 1. Drop one coefficient (strongest reduction first).
    for (std::size_t i = 0; i < n && n > 1; ++i) {
      FuzzCase candidate = best;
      candidate.coefficients.erase(candidate.coefficients.begin() +
                                   static_cast<std::ptrdiff_t>(i));
      if (!candidate.align.empty()) {
        candidate.align.erase(candidate.align.begin() +
                              static_cast<std::ptrdiff_t>(i));
      }
      if (!has_nonzero(candidate.coefficients)) continue;
      if (still_fails(candidate)) {
        best = std::move(candidate);
        improved = true;
        break;
      }
    }
    if (improved) continue;

    // 2. Drop the alignment vector entirely.
    if (!best.align.empty()) {
      FuzzCase candidate = best;
      candidate.align.clear();
      if (still_fails(candidate)) {
        best = std::move(candidate);
        improved = true;
        continue;
      }
    }

    // 3. Zero one coefficient outright.
    for (std::size_t i = 0; i < n; ++i) {
      if (best.coefficients[i] == 0) continue;
      FuzzCase candidate = best;
      candidate.coefficients[i] = 0;
      if (!has_nonzero(candidate.coefficients)) continue;
      if (still_fails(candidate)) {
        best = std::move(candidate);
        improved = true;
        break;
      }
    }
    if (improved) continue;

    // 4. Halve one magnitude.
    for (std::size_t i = 0; i < n; ++i) {
      if (best.coefficients[i] == 0 || best.coefficients[i] == 1 ||
          best.coefficients[i] == -1) {
        continue;
      }
      FuzzCase candidate = best;
      candidate.coefficients[i] /= 2;
      if (!has_nonzero(candidate.coefficients)) continue;
      if (still_fails(candidate)) {
        best = std::move(candidate);
        improved = true;
        break;
      }
    }
    if (improved) continue;

    // 5. Clear the lowest set bit of one magnitude.
    for (std::size_t i = 0; i < n; ++i) {
      const i64 v = best.coefficients[i];
      if (popcount_abs(v) < 2) continue;
      const u64 mag = abs_u64(v);
      const u64 cleared = mag & (mag - 1);
      FuzzCase candidate = best;
      candidate.coefficients[i] =
          v < 0 ? -static_cast<i64>(cleared) : static_cast<i64>(cleared);
      if (still_fails(candidate)) {
        best = std::move(candidate);
        improved = true;
        break;
      }
    }
    if (improved) continue;

    // 6. Zero one alignment shift.
    for (std::size_t i = 0; i < best.align.size(); ++i) {
      if (best.align[i] == 0) continue;
      FuzzCase candidate = best;
      candidate.align[i] = 0;
      if (still_fails(candidate)) {
        best = std::move(candidate);
        improved = true;
        break;
      }
    }
  }
  if (evals_out != nullptr) *evals_out = evals;
  return best;
}

std::string replay_command(const FuzzCase& c) {
  std::string cmd = "mrpf_fuzz --bank " + join_i64(c.coefficients);
  bool any_align = false;
  for (const int a : c.align) any_align = any_align || a != 0;
  if (any_align) cmd += " --align " + join_int(c.align);
  cmd += " --scheme " + core::to_string(c.scheme);
  cmd += str_format(" --input-bits %d", c.input_bits);
  if (c.options.beta != 0.5) cmd += str_format(" --beta %g", c.options.beta);
  if (c.options.depth_limit != 0) {
    cmd += str_format(" --depth %d", c.options.depth_limit);
  }
  if (c.options.recursive_levels != 0) {
    cmd += str_format(" --recursive %d", c.options.recursive_levels);
  }
  if (c.options.l_max != -1) cmd += str_format(" --l-max %d", c.options.l_max);
  if (c.options.opt_budget != 0) {
    cmd += str_format(" --opt-budget %lld", c.options.opt_budget);
  }
  if (c.options.passes.xform) {
    cmd += c.options.passes.xform_budget != 0
               ? str_format(" --xform-budget %lld",
                            c.options.passes.xform_budget)
               : std::string(" --xform");
  }
  if (c.options.rep == number::NumberRep::kCsd) {
    cmd += " --rep csd";
  } else if (c.options.rep == number::NumberRep::kSignMagnitude) {
    cmd += " --rep sm";
  }
  if (c.inject != FaultKind::kNone) {
    cmd += " --inject " + to_string(c.inject);
  }
  return cmd;
}

FuzzReport run_fuzz(const FuzzConfig& config) {
  FuzzReport report;
  report.seed = config.seed;
  const std::uint64_t run_start = now_ns();
  for (std::size_t i = 0; i < config.cases; ++i) {
    if (config.time_budget_ms > 0) {
      const std::int64_t elapsed_ms =
          static_cast<std::int64_t>((now_ns() - run_start) / 1000000ULL);
      if (elapsed_ms >= config.time_budget_ms) {
        report.time_budget_exhausted = true;
        break;
      }
    }
    FuzzCase c = generate_case(config.seed, i, config.schemes);
    c.inject = config.inject;
    if (config.force_xform && !c.options.passes.xform) {
      c.options.passes.xform = true;
      c.options.passes.xform_budget =
          kXformFuzzBudgets[case_hash(c) % 3];
    }

    const std::uint64_t t0 = now_ns();
    const CaseResult result = run_case(c, config);
    const std::uint64_t case_ns = now_ns() - t0;

    ++report.cases_run;
    SchemeStats& scheme_stats =
        report.per_scheme[static_cast<std::size_t>(c.scheme)];
    ++scheme_stats.cases;
    scheme_stats.ns += case_ns;
    for (const Oracle o : all_oracles()) {
      const std::size_t oi = oracle_index(o);
      if (!config.oracles[oi]) continue;
      // An oracle ran iff the case reached it: every enabled oracle on a
      // pass, the prefix up to the failing oracle otherwise.
      const bool ran =
          result.passed || oi <= oracle_index(result.failure->oracle);
      if (!ran) continue;
      ++report.per_oracle[oi].runs;
      report.per_oracle[oi].ns += result.oracle_ns[oi];
    }
    if (result.passed) continue;

    ++report.failures;
    ++scheme_stats.failures;
    ++report.per_oracle[oracle_index(result.failure->oracle)].failures;

    FuzzFailure failure;
    failure.case_index = i;
    failure.original = c;
    failure.shrunk = shrink_case(c, config, &failure.shrink_evals);
    const CaseResult shrunk_result = run_case(failure.shrunk, config);
    failure.failure =
        shrunk_result.failure.value_or(*result.failure);  // belt and braces
    failure.replay = replay_command(failure.shrunk);
    report.failure_detail.push_back(std::move(failure));
  }
  report.total_ns = now_ns() - run_start;
  return report;
}

std::string FuzzReport::to_json() const {
  std::string out = "{\n";
  out += str_format("  \"seed\": %llu,\n",
                    static_cast<unsigned long long>(seed));
  out += str_format("  \"cases_run\": %llu,\n",
                    static_cast<unsigned long long>(cases_run));
  out += str_format("  \"failures\": %llu,\n",
                    static_cast<unsigned long long>(failures));
  out += str_format("  \"time_budget_exhausted\": %s,\n",
                    time_budget_exhausted ? "true" : "false");
  out += str_format("  \"total_ms\": %s,\n",
                    io::json_double(static_cast<double>(total_ns) / 1e6)
                        .c_str());
  out += "  \"per_scheme\": {\n";
  for (int s = 0; s < core::kNumSchemes; ++s) {
    const SchemeStats& stats = per_scheme[static_cast<std::size_t>(s)];
    out += str_format(
        "    %s: {\"cases\": %llu, \"failures\": %llu, \"ms\": %s}%s\n",
        io::json_quote(core::to_string(core::all_schemes()[
            static_cast<std::size_t>(s)])).c_str(),
        static_cast<unsigned long long>(stats.cases),
        static_cast<unsigned long long>(stats.failures),
        io::json_double(static_cast<double>(stats.ns) / 1e6).c_str(),
        s + 1 < core::kNumSchemes ? "," : "");
  }
  out += "  },\n";
  out += "  \"per_oracle\": {\n";
  for (int o = 0; o < kNumOracles; ++o) {
    const OracleStats& stats = per_oracle[static_cast<std::size_t>(o)];
    out += str_format(
        "    %s: {\"runs\": %llu, \"failures\": %llu, \"ms\": %s}%s\n",
        io::json_quote(to_string(all_oracles()[static_cast<std::size_t>(o)]))
            .c_str(),
        static_cast<unsigned long long>(stats.runs),
        static_cast<unsigned long long>(stats.failures),
        io::json_double(static_cast<double>(stats.ns) / 1e6).c_str(),
        o + 1 < kNumOracles ? "," : "");
  }
  out += "  },\n";
  out += "  \"failures_detail\": [";
  for (std::size_t i = 0; i < failure_detail.size(); ++i) {
    const FuzzFailure& f = failure_detail[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {";
    out += str_format("\"case\": %llu, ",
                      static_cast<unsigned long long>(f.case_index));
    out += str_format("\"scheme\": %s, ",
                      io::json_quote(core::to_string(f.shrunk.scheme)).c_str());
    out += str_format("\"oracle\": %s, ",
                      io::json_quote(to_string(f.failure.oracle)).c_str());
    out += str_format("\"detail\": %s,\n     ",
                      io::json_quote(f.failure.detail).c_str());
    out += str_format("\"bank\": %s, ",
                      json_i64_array(f.original.coefficients).c_str());
    out += str_format("\"shrunk_bank\": %s, ",
                      json_i64_array(f.shrunk.coefficients).c_str());
    out += str_format("\"shrink_evals\": %llu,\n     ",
                      static_cast<unsigned long long>(f.shrink_evals));
    out += str_format("\"replay\": %s}", io::json_quote(f.replay).c_str());
  }
  out += failure_detail.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace mrpf::verify
