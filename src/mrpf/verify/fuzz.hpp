// Differential fuzz-verification harness over the whole SchemeDriver
// pipeline — the standing correctness gate behind the paper's central
// claim that every scheme's multiplier block is bit-identical to the naive
// constant-vector product.
//
// The harness generates randomized coefficient banks (varied wordlengths,
// signs, zeros, duplicates, near-limit magnitudes, symmetric vectors,
// alignment shifts) crossed with randomized result-relevant MrpOptions
// (including randomized e-graph pass budgets) and scheme choices, runs
// each resulting SynthPlan through six independent oracles, and on any
// failure greedily shrinks the case to a minimal reproducer with a printed
// replay command:
//
//   cost   analytic adder cost vs. an independent integer recount of the
//          replayed adder-graph ops (operand/shift bounds, fundamental
//          overflow, tap-realizes-bank, graph <= analytic adders)
//   sim    lowered TdfFilter vs. dsp::fir_filter_exact on uniform /
//          impulse / sine stimuli (sim::check_equivalence_suite)
//   rtl    emitted Verilog re-parsed and executed in rtl::Simulator vs.
//          the C++ model, sample for sample
//   serde  serialize -> deserialize -> field-for-field plan equality and
//          re-lowered block equivalence
//   exec   compiled exec::StreamingFilter (varied lane width, uneven push
//          chunking, reset-replay) vs. TdfFilter::run, sample for sample
//   xform  pass-off-vs-pass-on equivalence: when the case enables the
//          e-graph rewrite pass, the pre-pass plan must lower cleanly and
//          stream-match the post-pass plan, and the pass must never have
//          made the plan cost more adders
//
// Every case is replayable in isolation (tools/mrpf_fuzz --bank ...), and
// the MRPF_FUZZ_INJECT hook deliberately corrupts one plan op so CI can
// prove the oracles and the shrinker actually detect and minimize faults.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mrpf/core/flow.hpp"
#include "mrpf/core/plan_equality.hpp"
#include "mrpf/core/scheme.hpp"

namespace mrpf::verify {

/// The six independent oracles, in execution order.
enum class Oracle {
  kCost,   ///< Analytic cost vs. independent op-replay recount.
  kSim,    ///< Lowered filter vs. exact convolution (three stimuli).
  kRtl,    ///< Emitted Verilog re-simulated vs. the C++ model.
  kSerde,  ///< Serde round-trip: field equality + re-lowered equivalence.
  kExec,   ///< Compiled streaming engine vs. the interpreted model.
  kXform,  ///< Pass-off-vs-pass-on equivalence (no-op when the pass is off).
};
inline constexpr int kNumOracles = 6;

/// All oracles in enum order (canonical iteration order for counters).
const std::array<Oracle, kNumOracles>& all_oracles();

/// Canonical CLI/JSON spelling; round-trips with parse_oracle().
std::string to_string(Oracle oracle);
std::optional<Oracle> parse_oracle(std::string_view name);

/// Deliberate plan corruptions for the fault-injection hook. Each targets
/// a different detection surface: op faults are caught analytically by the
/// cost oracle and numerically by every lowering consumer; tap faults by
/// tap-realization checks; cost faults only by the cost oracle.
enum class FaultKind {
  kNone,
  kOpShift,      ///< Bump a tap-feeding op's left operand shift.
  kOpSubtract,   ///< Flip a tap-feeding op's add/subtract.
  kTapNegate,    ///< Flip the first nonzero tap's negation.
  kAnalyticCost, ///< Claim one adder fewer than the replayed graph holds.
};
std::string to_string(FaultKind kind);
/// Parses "shift" / "subtract" / "tap" / "cost" ("1" aliases "shift", the
/// default corruption of the MRPF_FUZZ_INJECT env hook).
std::optional<FaultKind> parse_fault(std::string_view name);

/// The MRPF_FUZZ_INJECT env hook: kNone when unset/empty; a parse failure
/// warns once and reads as kNone (the harness must never inject by
/// accident).
FaultKind fault_from_env();

/// Applies the corruption to the plan. A plan that offers no site for the
/// requested fault (e.g. no ops for kOpShift) falls back to the first kind
/// that applies, so injection always corrupts something detectable.
void inject_fault(core::SynthPlan& plan, FaultKind kind);

/// One fully specified fuzz case — everything needed to replay it in
/// isolation, independent of the generator.
struct FuzzCase {
  std::vector<i64> coefficients;   ///< Full (possibly symmetric) vector.
  std::vector<int> align;          ///< Per-tap alignment shifts; may be empty.
  core::Scheme scheme = core::Scheme::kSimple;
  core::MrpOptions options;        ///< Result-relevant knobs only.
  int input_bits = 10;
  FaultKind inject = FaultKind::kNone;
};

/// Which oracle failed and why (human-readable detail, one line).
struct OracleFailure {
  Oracle oracle = Oracle::kCost;
  std::string detail;
};

/// Verdict of one case: passed, or the first failing oracle.
struct CaseResult {
  bool passed = true;
  std::optional<OracleFailure> failure;
  /// Wall time spent inside each oracle (0 for oracles not run).
  std::array<std::uint64_t, kNumOracles> oracle_ns{};
};

struct FuzzConfig {
  std::uint64_t seed = 1;
  std::size_t cases = 200;
  /// Stop generating new cases once this much wall time has elapsed;
  /// 0 = no budget (run exactly `cases`).
  std::int64_t time_budget_ms = 0;
  /// Schemes to cycle through (round-robin, so coverage stays even under
  /// a time budget); empty = all six.
  std::vector<core::Scheme> schemes;
  /// Enabled oracles, indexed by Oracle enum order.
  std::array<bool, kNumOracles> oracles{true, true, true, true, true, true};
  /// Force the e-graph pass on for every generated case (budget drawn from
  /// the case's deterministic hash). The generator already enables it on a
  /// random quarter of cases; forcing is for dedicated pass-hammering runs
  /// (tools/mrpf_fuzz --xform).
  bool force_xform = false;
  /// Corrupt every generated plan with this fault (kNone = fuzz honestly).
  FaultKind inject = FaultKind::kNone;
  /// Samples per stimulus for the sim oracle and the RTL oracle.
  std::size_t sim_samples = 96;
  std::size_t rtl_samples = 48;
  /// Cap on shrink-candidate evaluations per failure.
  std::size_t shrink_budget = 2000;
};

struct OracleStats {
  std::uint64_t runs = 0;
  std::uint64_t failures = 0;
  std::uint64_t ns = 0;
};

struct SchemeStats {
  std::uint64_t cases = 0;
  std::uint64_t failures = 0;
  std::uint64_t ns = 0;
};

/// One minimized failure: the original case, the shrunk reproducer, the
/// shrunk case's failing oracle and a CLI command that replays it.
struct FuzzFailure {
  std::size_t case_index = 0;
  FuzzCase original;
  FuzzCase shrunk;
  OracleFailure failure;
  std::string replay;
  std::size_t shrink_evals = 0;  ///< Candidate evaluations spent shrinking.
};

struct FuzzReport {
  std::uint64_t seed = 0;
  std::uint64_t cases_run = 0;
  std::uint64_t failures = 0;
  bool time_budget_exhausted = false;
  std::uint64_t total_ns = 0;
  std::array<OracleStats, kNumOracles> per_oracle{};
  std::array<SchemeStats, core::kNumSchemes> per_scheme{};
  std::vector<FuzzFailure> failure_detail;

  /// Machine-readable run report (per-scheme / per-oracle counts and
  /// timing, failure reproducers with replay commands).
  std::string to_json() const;
};

/// Deterministically generates case `index` of run `seed`: the same
/// (seed, index, schemes) always yields the same case, on every platform,
/// so any case from a run report can be regenerated without replaying the
/// whole run. `schemes` empty = all six (round-robin by index).
FuzzCase generate_case(std::uint64_t seed, std::size_t index,
                       const std::vector<core::Scheme>& schemes);

/// Runs one case through the enabled oracles (config.sim_samples /
/// rtl_samples control stimulus length). Any mrpf::Error thrown by the
/// pipeline while an oracle is active counts as that oracle's failure —
/// the harness never crashes on a detected inconsistency.
CaseResult run_case(const FuzzCase& c, const FuzzConfig& config);

/// Greedily shrinks a failing case — drop coefficients, halve magnitudes,
/// clear low bits, zero coefficients, drop alignment — accepting any
/// candidate that still fails some enabled oracle, until no candidate
/// shrinks further or the budget is exhausted. Returns the minimal
/// reproducer; `evals_out` (when non-null) receives the number of
/// candidate evaluations spent.
FuzzCase shrink_case(const FuzzCase& failing, const FuzzConfig& config,
                     std::size_t* evals_out = nullptr);

/// The tools/mrpf_fuzz command line that replays `c` standalone.
std::string replay_command(const FuzzCase& c);

/// The full harness: generate, verify, shrink failures, report.
FuzzReport run_fuzz(const FuzzConfig& config);

/// Field-for-field SynthPlan comparison (timers excluded — they are
/// observability, not part of the solution). The definition moved to the
/// shared core/plan_equality.hpp; this alias keeps the historical
/// verify-spelled call sites working.
inline std::optional<std::string> plan_mismatch(const core::SynthPlan& a,
                                                const core::SynthPlan& b) {
  return core::plan_mismatch(a, b);
}

}  // namespace mrpf::verify
