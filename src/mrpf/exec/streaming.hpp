// Block-streaming filter API: push N samples, pull N outputs, bit-identical
// to arch::TdfFilter sample for sample across any chunking of the stream.
//
// StreamingFilter owns the mode decision: the compiled vector engine when
// it is provably exact for the declared input width, the checked TDF
// interpreter otherwise (or when MRPF_EXEC pins a mode). Either path keeps
// its state across push() calls, and reset() restores the
// freshly-constructed state without recompiling.
#pragma once

#include <memory>
#include <vector>

#include "mrpf/arch/tdf.hpp"
#include "mrpf/exec/engine.hpp"

namespace mrpf::exec {

/// Execution backend. Numbering mirrors env::ParsedExecMode::mode.
enum class ExecMode {
  kOff = 0,     ///< Exec module disabled: always the checked interpreter.
  kInterp = 1,  ///< Checked TDF interpreter (arch::TdfFilter::push).
  kVector = 2,  ///< Compiled lane-blocked engine (exact-width proven).
};

const char* to_string(ExecMode mode);

/// How a StreamingFilter should execute.
struct ExecConfig {
  ExecMode mode = ExecMode::kVector;  ///< Requested backend.
  int lanes = 0;                      ///< 0 = default_lane_width.
  /// Declared max signed input width in bits (|x| < 2^(input_bits-1)).
  /// The vector engine only engages when this is within the program's
  /// proven max_input_bits; otherwise push() silently takes the checked
  /// interpreter, so the answer is exact either way.
  int input_bits = 32;
};

/// Reads MRPF_EXEC ("off" | "interp" | "vector" | "vector:N") into a
/// config. Unset means the default (vector, default lanes); a malformed
/// value warns once via env::warn_once and also returns the default, so a
/// typo can never silently change results or disable the engine.
ExecConfig exec_config_from_env();

class StreamingFilter {
 public:
  /// Compiles `filter`'s plan once (unless mode is kOff) and picks the
  /// effective backend for the declared input width.
  explicit StreamingFilter(arch::TdfFilter filter,
                           ExecConfig config = exec_config_from_env());

  /// Restores freshly-constructed state (no recompilation).
  void reset();

  /// Streams a chunk: out[i] is the filter output for x[i], continuing
  /// from where the previous push left off. Concatenating the outputs of
  /// any push sequence equals run() on the concatenated inputs.
  std::vector<i64> push(const std::vector<i64>& x);

  /// The backend push() actually uses (a kVector request degrades to
  /// kInterp when input_bits exceeds the proven width).
  ExecMode mode() const { return mode_; }
  /// Lanes of the vector engine; 0 when not on the vector path.
  int lanes() const { return engine_ ? engine_->lanes() : 0; }
  /// Compiled program. Valid whenever mode() != kOff at construction.
  const ExecProgram& program() const { return program_; }
  const arch::TdfFilter& filter() const { return filter_; }
  /// exec_compile + exec_run, aggregated over the filter's lifetime.
  core::StageTimers timers() const;

 private:
  arch::TdfFilter filter_;
  ExecConfig config_;
  ExecMode mode_ = ExecMode::kInterp;
  ExecProgram program_;
  std::unique_ptr<ExecEngine> engine_;
};

}  // namespace mrpf::exec
