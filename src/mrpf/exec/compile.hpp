// The plan compiler: arch::TdfFilter (any scheme, post-lowering, folded
// taps already expanded) -> ExecProgram. See program.hpp for what the
// passes do; compile() is deterministic and never fails on a verified
// filter — a plan whose magnitudes rule out unchecked int64 execution
// simply reports a small max_input_bits and the caller falls back to the
// checked interpreter.
#pragma once

#include "mrpf/arch/tdf.hpp"
#include "mrpf/exec/program.hpp"

namespace mrpf::exec {

/// Compiles the filter's multiplier block + tap alignment into an
/// execution program. Records timers.exec_compile (items = fused ops
/// kept).
ExecProgram compile(const arch::TdfFilter& filter);

}  // namespace mrpf::exec
