// Lane-blocked execution of a compiled ExecProgram.
//
// One engine owns the per-stream state: a register-slot file of
// `n_slots × lanes` int64 values and a sliding output-accumulation window
// (the block-FIR equivalent of the TDF chain registers). A block step is
//   load W input samples  ->  run the fused ops lane-parallel  ->  add each
//   fused tap's W products into the window at its delay offset  ->  emit W
//   outputs and slide the carry.
// Every inner loop is a contiguous fixed-trip-count loop over the lanes —
// exactly the shape compilers autovectorize — and all arithmetic is
// unsigned 64-bit wrap, which the compiler proved exact for inputs up to
// program.max_input_bits (see compile.cpp's width analysis). Outputs are
// bit-identical to arch::TdfFilter::run sample for sample, across any
// split of the stream into run() calls.
#pragma once

#include <cstddef>
#include <vector>

#include "mrpf/exec/program.hpp"

namespace mrpf::exec {

/// Lane width used when the caller passes 0: wide enough to fill vector
/// units, narrowed when the slot file would outgrow L1.
int default_lane_width(const ExecProgram& program);

class ExecEngine {
 public:
  /// The program must outlive the engine (the engine keeps a pointer —
  /// one compiled program serves many engines). lanes <= 0 resolves via
  /// default_lane_width; lanes are clamped to [1, 64].
  explicit ExecEngine(const ExecProgram& program, int lanes = 0);

  /// Zeroes the carry window — identical to a freshly constructed engine.
  void reset();

  /// Streams n samples: y[i] is the filter output for x[i], continuing
  /// from the state previous run() calls left behind. Any n (including 0
  /// and non-multiples of the lane width) is exact.
  void run(const i64* x, i64* y, std::size_t n);

  int lanes() const { return lanes_; }
  const ExecProgram& program() const { return *program_; }
  /// Accumulated exec_run time (items = samples processed).
  const core::StageTimers& timers() const { return timers_; }

 private:
  void run_block(const i64* x, i64* y, std::size_t m);

  const ExecProgram* program_;
  int lanes_;
  std::size_t carry_;        // pending-output count: n_taps - 1 (or 0)
  std::vector<i64> regs_;    // slot file, slot-major: regs_[slot*lanes + l]
  std::vector<i64> acc_;     // output window: carry_ + lanes entries used
  core::StageTimers timers_;
};

/// Batch-channel execution: one compiled program, many independent
/// streams. Channels fan out over the nesting-safe shared ThreadPool
/// (threads <= 0 — the default — routes through MRPF_THREADS); each
/// channel gets its own engine, so outputs are bit-identical to a serial
/// loop regardless of thread count.
std::vector<std::vector<i64>> run_batch(
    const ExecProgram& program, const std::vector<std::vector<i64>>& inputs,
    int lanes = 0, int threads = 0);

}  // namespace mrpf::exec
