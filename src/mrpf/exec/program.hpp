// The compiled execution IR: a SynthPlan lowered for *software* instead of
// hardware. Where lower_plan replays adder ops into an arch::AdderGraph to
// be walked node by node per sample, the exec compiler flattens the same
// ops into a register-slot program an inner loop can stream 8–16 samples
// through at once:
//
//   * dead-op elimination — ops no tap reaches are dropped entirely;
//   * shift/negate fusion — each tap's wiring shift, output negation and
//     per-tap alignment shift collapse into one fused ExecTap descriptor;
//   * contiguous register-slot allocation — SSA node ids remap to a small
//     slot file with lifetime-based reuse, so the working set stays inside
//     L1 no matter how many nodes the plan held.
//
// The program is pure data (no graph pointers), so one compile serves any
// number of concurrent streams — each ExecEngine owns only its slot file
// and carry window.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mrpf/common/bits.hpp"
#include "mrpf/core/stage_timers.hpp"

namespace mrpf::exec {

/// One fused shift-add over register slots, evaluated lane-parallel:
///   slot[dst] = (slot[a] << shift_a)  ±  (slot[b] << shift_b)
/// dst may alias a or b (lanes are independent, read-then-write per lane).
struct ExecOp {
  int dst = 0;
  int a = 0;
  int b = 0;
  int shift_a = 0;
  int shift_b = 0;
  bool subtract = false;
};

/// One fused output-tap descriptor: the contribution of tap `position` is
///   p = (negate ? - : +) (slot value << shift)
/// with `shift` the tap wiring shift plus the per-tap alignment shift
/// (negative means dropping always-zero LSBs — exact by graph invariant).
/// Zero taps never appear here: they contribute nothing and are elided at
/// compile time.
struct ExecTap {
  int slot = 0;
  int shift = 0;
  bool negate = false;
  std::size_t position = 0;  ///< Output delay index (0 = current sample).
};

/// A compiled, topologically scheduled execution program over int64 lanes.
struct ExecProgram {
  std::size_t n_taps = 0;  ///< Total tap positions, including zero taps.
  int n_slots = 0;         ///< Register-slot file size after lifetime reuse.
  int input_slot = 0;      ///< Slot the input sample block is loaded into.
  std::vector<ExecOp> ops;   ///< Dead-op-free, in dependency order.
  std::vector<ExecTap> taps; ///< Live taps, ascending position.

  /// Source-graph op count before dead-op elimination (observability).
  int source_ops = 0;

  /// Largest signed input width (bits) for which every intermediate —
  /// node value, fused tap product, output partial sum — provably fits in
  /// int64, so the engine's unchecked wrap arithmetic is exact. Inputs
  /// wider than this must take the checked interpreter instead.
  int max_input_bits = 0;

  /// exec_compile filled by compile(); engines account exec_run locally.
  core::StageTimers timers;
};

/// The per-stage JSON fragment the throughput bench embeds in
/// BENCH_throughput.json: every StageTimers sample keyed by stage name
/// ("exec.compile", "exec.run", "optimize", ...) with ms and item counts.
std::string stage_timers_json(const core::StageTimers& timers,
                              const std::string& indent);

}  // namespace mrpf::exec
