#include "mrpf/exec/compile.hpp"

#include <algorithm>
#include <climits>

#include "mrpf/common/error.hpp"
#include "mrpf/io/json_report.hpp"

namespace mrpf::exec {

namespace {

/// Bits needed to represent the non-negative 128-bit magnitude `v`.
int bit_width_i128(i128 v) {
  int bits = 0;
  while (v > 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

}  // namespace

ExecProgram compile(const arch::TdfFilter& filter) {
  ExecProgram prog;
  {
    core::StageStopwatch watch(prog.timers.exec_compile);
    const arch::AdderGraph& graph = filter.block().graph;
    const std::vector<arch::Tap>& taps = filter.block().taps;
    const std::vector<int>& align = filter.alignment();
    const int n_nodes = graph.num_nodes();
    prog.n_taps = taps.size();
    prog.source_ops = graph.num_adders();

    // --- Dead-op elimination: mark nodes reachable from some tap. Ops are
    // in dependency order (node k's operands are < k), so one reverse sweep
    // closes the reachable set.
    std::vector<bool> live(static_cast<std::size_t>(n_nodes), false);
    live[0] = true;  // the input is always loaded
    for (const arch::Tap& tap : taps) {
      if (tap.node >= 1) live[static_cast<std::size_t>(tap.node)] = true;
    }
    for (int node = n_nodes - 1; node >= 1; --node) {
      if (!live[static_cast<std::size_t>(node)]) continue;
      const arch::AdderOp& op = graph.op(node);
      live[static_cast<std::size_t>(op.a)] = true;
      live[static_cast<std::size_t>(op.b)] = true;
    }

    // --- Schedule: live ops keep their dependency order; emit_pos[node]
    // is the program position of the op defining `node`.
    constexpr int kPinned = INT_MAX;  // read by a tap after every op
    std::vector<int> emit_pos(static_cast<std::size_t>(n_nodes), -1);
    int pos = 0;
    for (int node = 1; node < n_nodes; ++node) {
      if (live[static_cast<std::size_t>(node)]) {
        emit_pos[static_cast<std::size_t>(node)] = pos++;
      }
    }
    // Last read of each node: the latest reading op's position, or pinned
    // to the end of the program when a tap reads it.
    std::vector<int> last_use(static_cast<std::size_t>(n_nodes), -1);
    for (int node = 1; node < n_nodes; ++node) {
      if (!live[static_cast<std::size_t>(node)]) continue;
      const arch::AdderOp& op = graph.op(node);
      const int p = emit_pos[static_cast<std::size_t>(node)];
      std::size_t a = static_cast<std::size_t>(op.a);
      std::size_t b = static_cast<std::size_t>(op.b);
      last_use[a] = std::max(last_use[a], p);
      last_use[b] = std::max(last_use[b], p);
    }
    for (const arch::Tap& tap : taps) {
      if (tap.node >= 0) last_use[static_cast<std::size_t>(tap.node)] = kPinned;
    }

    // --- Register-slot allocation with lifetime-based reuse: a slot frees
    // the moment its node's final reader executes. dst may take a freed
    // operand slot — the engine evaluates lanes element-wise, so in-place
    // is exact.
    std::vector<int> slot_of(static_cast<std::size_t>(n_nodes), -1);
    std::vector<int> free_slots;
    int n_slots = 0;
    const auto alloc_slot = [&free_slots, &n_slots]() {
      if (!free_slots.empty()) {
        const int s = free_slots.back();
        free_slots.pop_back();
        return s;
      }
      return n_slots++;
    };
    slot_of[0] = alloc_slot();
    prog.input_slot = slot_of[0];
    prog.ops.reserve(static_cast<std::size_t>(pos));
    for (int node = 1; node < n_nodes; ++node) {
      if (!live[static_cast<std::size_t>(node)]) continue;
      const arch::AdderOp& op = graph.op(node);
      const int p = emit_pos[static_cast<std::size_t>(node)];
      ExecOp e;
      e.a = slot_of[static_cast<std::size_t>(op.a)];
      e.b = slot_of[static_cast<std::size_t>(op.b)];
      e.shift_a = op.shift_a;
      e.shift_b = op.shift_b;
      e.subtract = op.subtract;
      if (last_use[static_cast<std::size_t>(op.a)] == p) {
        free_slots.push_back(slot_of[static_cast<std::size_t>(op.a)]);
      }
      if (op.b != op.a && last_use[static_cast<std::size_t>(op.b)] == p) {
        free_slots.push_back(slot_of[static_cast<std::size_t>(op.b)]);
      }
      e.dst = alloc_slot();
      slot_of[static_cast<std::size_t>(node)] = e.dst;
      prog.ops.push_back(e);
    }
    prog.n_slots = n_slots;

    // --- Shift/negate fusion: tap wiring shift + alignment shift + output
    // negation collapse into one descriptor; zero taps vanish.
    prog.taps.reserve(taps.size());
    for (std::size_t k = 0; k < taps.size(); ++k) {
      const arch::Tap& tap = taps[k];
      if (tap.node < 0) continue;
      ExecTap t;
      t.slot = slot_of[static_cast<std::size_t>(tap.node)];
      t.shift = tap.shift + (align.empty() ? 0 : align[k]);
      t.negate = tap.negate;
      t.position = k;
      MRPF_CHECK(t.slot >= 0, "exec: tap reads an unallocated slot");
      prog.taps.push_back(t);
    }

    // --- Width analysis: find the widest signed input for which every
    // intermediate provably fits int64, so the engine's wrap arithmetic is
    // exact without per-sample checks. Bounds (|x| <= 2^(B-1)):
    //   node values:       |fundamental| * |x|
    //   fused tap product: |c[k] << align[k]| * |x|
    //   output partials:   sum over taps of the product bound (any partial
    //                      sum of same-sample products is dominated by it)
    i128 bound = 1;  // the input value itself
    for (int node = 1; node < n_nodes; ++node) {
      if (!live[static_cast<std::size_t>(node)]) continue;
      const i128 f = static_cast<i128>(abs_u64(graph.fundamental(node)));
      bound = std::max(bound, f);
    }
    i128 tap_sum = 0;
    const std::vector<i64>& coeffs = filter.coefficients();
    for (std::size_t k = 0; k < coeffs.size(); ++k) {
      const int sh = align.empty() ? 0 : align[k];
      tap_sum += static_cast<i128>(abs_u64(coeffs[k])) << sh;
    }
    bound = std::max(bound, tap_sum);
    // bound < 2^bits, so bound * 2^(B-1) < 2^63 whenever B <= 64 - bits.
    prog.max_input_bits = std::min(63, 64 - bit_width_i128(bound));
  }
  prog.timers.exec_compile.items = prog.ops.size();
  return prog;
}

std::string stage_timers_json(const core::StageTimers& timers,
                              const std::string& indent) {
  const core::StageSample* samples[] = {
      &timers.primaries,     &timers.color_graph, &timers.set_cover,
      &timers.tree_growth,   &timers.seed_synthesis, &timers.optimize,
      &timers.lowering,      &timers.exec_compile,   &timers.exec_run};
  const char* names[] = {"primaries",      "color_graph", "set_cover",
                         "tree_growth",    "seed_synthesis", "optimize",
                         "lowering",       "exec.compile",   "exec.run"};
  std::string out = "{\n";
  for (std::size_t i = 0; i < 9; ++i) {
    out += indent + "  \"" + names[i] + "\": {\"ms\": " +
           io::json_double(samples[i]->ns / 1e6) + ", \"items\": " +
           std::to_string(samples[i]->items) + "},\n";
  }
  out += indent + "  \"total_ms\": " + io::json_double(timers.total_ns / 1e6) +
         "\n" + indent + "}";
  return out;
}

}  // namespace mrpf::exec
