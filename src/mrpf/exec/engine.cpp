#include "mrpf/exec/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "mrpf/common/error.hpp"
#include "mrpf/common/parallel.hpp"

namespace mrpf::exec {

namespace {

constexpr int kMaxLanes = 64;

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

int default_lane_width(const ExecProgram& program) {
  // 16 lanes fill a couple of AVX2/NEON vectors per op; fall back to 8
  // when the slot file would spill past ~32 KiB of L1.
  const int slots = std::max(1, program.n_slots);
  return slots * 16 > 4096 ? 8 : 16;
}

ExecEngine::ExecEngine(const ExecProgram& program, int lanes)
    : program_(&program) {
  lanes_ = lanes > 0 ? lanes : default_lane_width(program);
  lanes_ = std::min(std::max(lanes_, 1), kMaxLanes);
  carry_ = program.n_taps > 0 ? program.n_taps - 1 : 0;
  regs_.assign(static_cast<std::size_t>(std::max(1, program.n_slots)) *
                   static_cast<std::size_t>(lanes_),
               0);
  acc_.assign(carry_ + static_cast<std::size_t>(lanes_) + 1, 0);
}

void ExecEngine::reset() { std::fill(acc_.begin(), acc_.end(), 0); }

void ExecEngine::run_block(const i64* x, i64* y, std::size_t m) {
  const int W = lanes_;
  const std::size_t lanes = static_cast<std::size_t>(W);

  // Load the input block; lanes past m carry zero so the full-width op
  // loops below compute zero contributions for them (0 in, 0 out).
  i64* in = regs_.data() +
            static_cast<std::size_t>(program_->input_slot) * lanes;
  std::memcpy(in, x, m * sizeof(i64));
  if (m < lanes) std::memset(in + m, 0, (lanes - m) * sizeof(i64));

  // Fused ops, lane-parallel. Wrap (unsigned) arithmetic: the compile-time
  // width analysis guarantees every true value fits int64, and mod-2^64
  // arithmetic agrees with exact arithmetic on values that fit.
  for (const ExecOp& op : program_->ops) {
    i64* d = regs_.data() + static_cast<std::size_t>(op.dst) * lanes;
    const i64* a = regs_.data() + static_cast<std::size_t>(op.a) * lanes;
    const i64* b = regs_.data() + static_cast<std::size_t>(op.b) * lanes;
    const int sa = op.shift_a;
    const int sb = op.shift_b;
    if (op.subtract) {
      for (int l = 0; l < W; ++l) {
        d[l] = static_cast<i64>((static_cast<u64>(a[l]) << sa) -
                                (static_cast<u64>(b[l]) << sb));
      }
    } else {
      for (int l = 0; l < W; ++l) {
        d[l] = static_cast<i64>((static_cast<u64>(a[l]) << sa) +
                                (static_cast<u64>(b[l]) << sb));
      }
    }
  }

  // Reset the working region of the output window; acc_[0, carry_) holds
  // partial sums pending from previous blocks.
  std::fill(acc_.begin() + static_cast<std::ptrdiff_t>(carry_), acc_.end(),
            0);

  // Each fused tap adds its W products into the window at its delay
  // offset: sample l's product for tap k lands on output (base + l + k).
  for (const ExecTap& tap : program_->taps) {
    i64* dst = acc_.data() + tap.position;
    const i64* src = regs_.data() + static_cast<std::size_t>(tap.slot) * lanes;
    const int sh = tap.shift;
    if (sh >= 0) {
      if (tap.negate) {
        for (int l = 0; l < W; ++l) {
          dst[l] = static_cast<i64>(static_cast<u64>(dst[l]) -
                                    (static_cast<u64>(src[l]) << sh));
        }
      } else {
        for (int l = 0; l < W; ++l) {
          dst[l] = static_cast<i64>(static_cast<u64>(dst[l]) +
                                    (static_cast<u64>(src[l]) << sh));
        }
      }
    } else {
      // Negative fused shift only drops always-zero LSBs (graph
      // invariant), so the arithmetic right shift is exact division.
      if (tap.negate) {
        for (int l = 0; l < W; ++l) {
          dst[l] = static_cast<i64>(static_cast<u64>(dst[l]) -
                                    static_cast<u64>(src[l] >> -sh));
        }
      } else {
        for (int l = 0; l < W; ++l) {
          dst[l] = static_cast<i64>(static_cast<u64>(dst[l]) +
                                    static_cast<u64>(src[l] >> -sh));
        }
      }
    }
  }

  // Emit the m completed outputs and slide the carry window forward.
  std::memcpy(y, acc_.data(), m * sizeof(i64));
  std::memmove(acc_.data(), acc_.data() + m, carry_ * sizeof(i64));
}

void ExecEngine::run(const i64* x, i64* y, std::size_t n) {
  const double t0 = now_ns();
  timers_.exec_run.items += n;
  const std::size_t lanes = static_cast<std::size_t>(lanes_);
  while (n > 0) {
    const std::size_t m = std::min(n, lanes);
    run_block(x, y, m);
    x += m;
    y += m;
    n -= m;
  }
  timers_.exec_run.ns += now_ns() - t0;
}

std::vector<std::vector<i64>> run_batch(
    const ExecProgram& program, const std::vector<std::vector<i64>>& inputs,
    int lanes, int threads) {
  std::vector<std::vector<i64>> outputs(inputs.size());
  parallel_for(
      inputs.size(),
      [&](std::size_t i) {
        ExecEngine engine(program, lanes);
        outputs[i].resize(inputs[i].size());
        engine.run(inputs[i].data(), outputs[i].data(), inputs[i].size());
      },
      threads);
  return outputs;
}

}  // namespace mrpf::exec
