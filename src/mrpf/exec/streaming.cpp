#include "mrpf/exec/streaming.hpp"

#include <cstdlib>
#include <string>
#include <utility>

#include "mrpf/common/env.hpp"
#include "mrpf/exec/compile.hpp"

namespace mrpf::exec {

const char* to_string(ExecMode mode) {
  switch (mode) {
    case ExecMode::kOff:
      return "off";
    case ExecMode::kInterp:
      return "interp";
    case ExecMode::kVector:
      return "vector";
  }
  return "?";
}

ExecConfig exec_config_from_env() {
  ExecConfig config;
  const char* raw = std::getenv("MRPF_EXEC");
  if (raw == nullptr) return config;
  const env::ParsedExecMode parsed = env::parse_exec_mode(raw);
  if (!parsed.well_formed) {
    env::warn_once("MRPF_EXEC",
                   std::string("MRPF_EXEC: ignoring malformed value \"") +
                       raw + "\" (want off|interp|vector|vector:N)");
    return config;
  }
  config.mode = static_cast<ExecMode>(parsed.mode);
  config.lanes = parsed.lanes;
  return config;
}

StreamingFilter::StreamingFilter(arch::TdfFilter filter, ExecConfig config)
    : filter_(std::move(filter)), config_(config) {
  filter_.reset();
  if (config_.mode == ExecMode::kOff) {
    mode_ = ExecMode::kOff;
    return;
  }
  program_ = compile(filter_);
  if (config_.mode == ExecMode::kVector &&
      config_.input_bits <= program_.max_input_bits) {
    mode_ = ExecMode::kVector;
    engine_ = std::make_unique<ExecEngine>(program_, config_.lanes);
  } else {
    mode_ = ExecMode::kInterp;
  }
}

void StreamingFilter::reset() {
  filter_.reset();
  if (engine_) engine_->reset();
}

std::vector<i64> StreamingFilter::push(const std::vector<i64>& x) {
  if (mode_ != ExecMode::kVector) return filter_.push(x);
  std::vector<i64> y(x.size());
  engine_->run(x.data(), y.data(), x.size());
  return y;
}

core::StageTimers StreamingFilter::timers() const {
  core::StageTimers out = program_.timers;
  if (engine_) core::accumulate(out, engine_->timers());
  return out;
}

}  // namespace mrpf::exec
