// Interconnect-aware design-space exploration with the benefit function's
// β knob (paper §3.3): in deep sub-micron it can be "cheaper to compute
// more than to share more". This example sweeps β, models interconnect as
// a per-fanout wire cost added to the CLA adder area, and reports where
// the total-cost optimum moves as wires get more expensive.
//
//   $ ./beta_explorer
#include <cstdio>
#include <map>
#include <vector>

#include "mrpf/arch/cost_model.hpp"
#include "mrpf/core/build.hpp"
#include "mrpf/core/flow.hpp"
#include "mrpf/filter/catalog.hpp"
#include "mrpf/number/quantize.hpp"

int main() {
  using namespace mrpf;

  const int catalog_index = 7;  // Ex8: 61-tap PM low-pass
  const int wordlength = 16;
  const int input_bits = 16;
  const auto& h = filter::catalog_coefficients(catalog_index);
  const auto q = number::quantize_uniform(h, wordlength);
  const std::vector<i64> bank = core::optimization_bank(q.values());

  std::printf("Exploring beta on %s (W=%d)\n",
              filter::catalog_spec(catalog_index).name.c_str(), wordlength);
  std::printf("%6s %8s %10s %12s | total cost at wire cost/fanout:\n",
              "beta", "adders", "max fan", "CLA area");
  std::printf("%40s %10s %10s %10s\n", "", "w=0", "w=10", "w=40");

  struct Point {
    double beta;
    double area;
    int max_fanout;
    int fanout_total;
  };
  std::vector<Point> frontier;

  for (const double beta : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8,
                            0.9, 1.0}) {
    core::MrpOptions opts;
    opts.beta = beta;
    opts.rep = number::NumberRep::kSpt;
    const core::MrpResult r = core::mrp_optimize(bank, opts);
    const arch::MultiplierBlock block = core::build_mrp_block(bank, r, opts);
    const double area =
        arch::multiplier_block_area(block.graph, input_bits);

    std::map<i64, int> fanout;
    for (const core::TreeEdge& te : r.tree_edges) ++fanout[te.edge.color];
    int max_fanout = 0;
    int fanout_total = 0;
    for (const auto& [color, f] : fanout) {
      max_fanout = std::max(max_fanout, f);
      fanout_total += f;
    }
    frontier.push_back({beta, area, max_fanout, fanout_total});

    std::printf("%6.2f %8d %10d %12.1f |", beta, r.total_adders(),
                max_fanout, area);
    for (const double wire : {0.0, 10.0, 40.0}) {
      std::printf(" %10.1f", area + wire * fanout_total);
    }
    std::printf("\n");
  }

  // Which beta wins as wires get expensive?
  for (const double wire : {0.0, 10.0, 40.0}) {
    const Point* best = &frontier.front();
    for (const Point& p : frontier) {
      if (p.area + wire * p.fanout_total <
          best->area + wire * best->fanout_total) {
        best = &p;
      }
    }
    std::printf("wire cost %5.1f per fanout: best beta = %.2f\n", wire,
                best->beta);
  }
  return 0;
}
