// Quickstart: run the paper's 8-tap example (§3.5) through the MRP
// transformation and print the resulting architecture, then compare every
// scheme's multiplier-block cost on the same bank.
//
//   $ ./quickstart
#include <cstdio>

#include "mrpf/core/flow.hpp"
#include "mrpf/core/report.hpp"
#include "mrpf/sim/equivalence.hpp"

int main() {
  using namespace mrpf;

  // The asymmetric 8-tap filter of paper §3.5.
  const std::vector<i64> coefficients = {7, 66, 17, 9, 27, 41, 57, 11};

  std::puts("== MRP transformation of the paper's 8-tap example ==\n");
  core::SchemeResult mrp =
      core::optimize_bank(coefficients, core::Scheme::kMrp);
  std::fputs(core::describe(*mrp.plan.mrp).c_str(), stdout);

  std::puts("\n== Scheme comparison (multiplier-block adders) ==");
  for (const auto scheme :
       {core::Scheme::kSimple, core::Scheme::kCse, core::Scheme::kDiffMst,
        core::Scheme::kMrp, core::Scheme::kMrpCse}) {
    const core::SchemeResult r = core::optimize_bank(coefficients, scheme);
    std::printf("  %s\n", core::describe(r, /*input_bits=*/12).c_str());
  }

  std::puts("\n== Bit-exact verification of the MRPF filter ==");
  const arch::TdfFilter filter =
      core::build_tdf(coefficients, /*align=*/{}, core::Scheme::kMrp);
  const sim::EquivalenceReport report =
      sim::check_equivalence_suite(filter, /*input_bits=*/12);
  std::printf("  TDF filter vs reference convolution: %s\n",
              report.to_string().c_str());
  return report.equivalent ? 0 : 1;
}
