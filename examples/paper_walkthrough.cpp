// Walk through the paper's §2–§3.5 on its own 8-tap example, showing the
// intermediate objects the text describes: the primary coefficients
// (step 2), the colored edge counts (§3.1's 2(W+1)M(M−1) formula), the
// color classes with frequency/cost/benefit (eq. 1), the greedy WMSC
// solution, the spanning trees, and the final SEED/overhead structure of
// Figure 4.
//
//   $ ./paper_walkthrough
#include <algorithm>
#include <cstdio>

#include "mrpf/core/build.hpp"
#include "mrpf/core/color_graph.hpp"
#include "mrpf/core/mrp.hpp"
#include "mrpf/core/report.hpp"
#include "mrpf/arch/dot.hpp"
#include "mrpf/number/repr.hpp"

int main() {
  using namespace mrpf;
  const std::vector<i64> c = {7, 66, 17, 9, 27, 41, 57, 11};
  std::puts("Paper §3.5 example: C = {7, 66, 17, 9, 27, 41, 57, 11}\n");

  // Step 2: primaries (66 = 2·33 is secondary to 33).
  const core::PrimaryBank bank = core::extract_primaries(c);
  std::printf("primaries (%zu):", bank.primaries.size());
  for (const i64 p : bank.primaries) {
    std::printf(" %lld", static_cast<long long>(p));
  }
  std::puts("");

  // Step 3: the colored multigraph.
  core::ColorGraphOptions cg_opts;
  cg_opts.rep = number::NumberRep::kSpt;
  const core::ColorGraph cg = core::build_color_graph(bank.primaries,
                                                      cg_opts);
  std::printf("SIDC edges: %zu  (2(L+1)M(M-1) with L=%d, M=%zu)\n",
              cg.edges.size(), cg.l_max, bank.primaries.size());
  std::printf("color classes: %zu\n\n", cg.classes.size());

  // Step 4: frequency / cost / benefit for the strongest colors.
  const double beta = 0.5;
  std::vector<const core::ColorClass*> ranked;
  for (const core::ColorClass& cls : cg.classes) ranked.push_back(&cls);
  std::sort(ranked.begin(), ranked.end(), [beta](const auto* a, const auto* b) {
    const double fa = beta * static_cast<double>(a->num_coverable()) -
                      (1.0 - beta) * a->cost;
    const double fb = beta * static_cast<double>(b->num_coverable()) -
                      (1.0 - beta) * b->cost;
    return fa > fb;
  });
  std::puts("top colors by benefit f = 0.5*freq - 0.5*cost:");
  std::printf("%8s %6s %6s %9s\n", "color", "freq", "cost", "benefit");
  for (std::size_t i = 0; i < std::min<std::size_t>(8, ranked.size()); ++i) {
    const auto* cls = ranked[i];
    std::printf("%8lld %6d %6d %9.2f\n",
                static_cast<long long>(cls->color), cls->num_coverable(),
                cls->cost,
                beta * static_cast<double>(cls->num_coverable()) -
                    (1.0 - beta) * cls->cost);
  }

  // Step 5–6 + trees + SEED.
  core::MrpOptions opts;
  opts.rep = number::NumberRep::kSpt;
  const core::MrpResult r = core::mrp_optimize(c, opts);
  std::puts("");
  std::fputs(core::describe(r).c_str(), stdout);

  // Figure 4: the physical structure (also exported as Graphviz).
  const arch::MultiplierBlock block = core::build_mrp_block(c, r, opts);
  std::printf(
      "\nfinal architecture: %d adders, depth %d (SEED network + overhead "
      "add network)\n",
      block.graph.num_adders(), block.graph.max_depth());
  std::puts("Graphviz of the block (pipe to `dot -Tpng`):\n");
  std::fputs(arch::emit_dot(block, "paper_example").c_str(), stdout);
  return 0;
}
