// Multirate scenario: a decimate-by-4 anti-alias front-end (the other
// fixed-coefficient workhorse of communication receivers). Designs a
// 59-tap low-pass, builds the polyphase decimator with each scheme in
// both bank modes — independent per-branch solves, and one shared
// multiplier block time-multiplexed across the branches — and verifies
// the whole structure bit-exactly against the reference.
//
//   $ ./polyphase_decimator
#include <cstdio>

#include "mrpf/common/rng.hpp"
#include "mrpf/core/polyphase_decimator.hpp"
#include "mrpf/filter/design.hpp"
#include "mrpf/filter/polyphase.hpp"
#include "mrpf/number/quantize.hpp"
#include "mrpf/sim/workload.hpp"

int main() {
  using namespace mrpf;

  const int factor = 4;
  filter::FilterSpec spec;
  spec.name = "antialias";
  spec.method = filter::DesignMethod::kParksMcClellan;
  spec.band = filter::BandType::kLowPass;
  spec.edges = {0.8 / factor, 1.2 / factor};
  spec.passband_ripple_db = 0.3;
  spec.stopband_atten_db = 60.0;
  spec.num_taps = 59;

  const std::vector<double> h = filter::design(spec);
  const auto q = number::quantize_uniform(h, 14);
  const std::vector<i64> c = q.values();

  std::printf("decimate-by-%d anti-alias filter, %d taps, W=14\n\n", factor,
              spec.num_taps);
  std::printf("%-9s %10s %7s   per-branch adders\n", "scheme", "per-branch",
              "shared");
  for (const auto scheme :
       {core::Scheme::kSimple, core::Scheme::kCse, core::Scheme::kRagn,
        core::Scheme::kMrp, core::Scheme::kMrpCse}) {
    const core::PolyphaseDecimator dec(c, factor, scheme);
    const core::PolyphaseDecimator fold(c, factor, scheme, {},
                                        core::BankSharing::kShared);
    std::printf("%-9s %10d %7d  ", core::to_string(scheme).c_str(),
                dec.multiplier_adders(), fold.multiplier_adders());
    for (const int a : dec.branch_adders()) std::printf(" %3d", a);
    std::printf("\n");
  }

  const core::PolyphaseDecimator dec(c, factor, core::Scheme::kMrpCse);
  const core::PolyphaseDecimator fold(c, factor, core::Scheme::kMrpCse, {},
                                      core::BankSharing::kShared);
  Rng rng(99);
  const std::vector<i64> x = sim::uniform_stream(rng, 4096, 12);
  const std::vector<i64> want = filter::decimate_exact(c, factor, x);
  const bool exact = dec.run(x) == want && fold.run(x) == want;
  std::printf(
      "\nbit-exact against reference decimator over %zu samples "
      "(both modes): %s\n",
      x.size(), exact ? "yes" : "NO");
  std::printf(
      "note: per-branch solves cannot share across phases (different "
      "multiplicand streams at the same instant); the shared mode folds "
      "all branches onto one block clocked at the full rate.\n");
  return exact ? 0 : 1;
}
