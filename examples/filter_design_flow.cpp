// Full synthesis flow on a realistic scenario: a 45-tap Parks–McClellan
// low-pass channel-selection filter (the kind of fixed-coefficient block
// the paper's introduction motivates for communication transceivers).
//
// spec → Remez design → measure → quantize (uniform & maximal, 14-bit)
//      → optimize with every scheme → bit-exact verification
//      → power proxy on a realistic input → Verilog size summary.
//
//   $ ./filter_design_flow
#include <algorithm>
#include <cstdio>

#include "mrpf/arch/cost_model.hpp"
#include "mrpf/arch/verilog.hpp"
#include "mrpf/core/flow.hpp"
#include "mrpf/core/report.hpp"
#include "mrpf/filter/design.hpp"
#include "mrpf/filter/measure.hpp"
#include "mrpf/number/quantize.hpp"
#include "mrpf/sim/equivalence.hpp"
#include "mrpf/sim/power.hpp"
#include "mrpf/sim/workload.hpp"

int main() {
  using namespace mrpf;

  // --- 1. Specify and design. ---
  filter::FilterSpec spec;
  spec.name = "channel-select";
  spec.method = filter::DesignMethod::kParksMcClellan;
  spec.band = filter::BandType::kLowPass;
  spec.edges = {0.15, 0.25};
  spec.passband_ripple_db = 0.5;
  spec.stopband_atten_db = 55.0;
  spec.num_taps = 45;

  const std::vector<double> h = filter::design(spec);
  const filter::Measurement m = filter::measure(h, spec);
  std::printf("Designed %s: %d taps, ripple %.3f dB, attenuation %.1f dB\n",
              spec.name.c_str(), spec.num_taps, m.passband_ripple_db,
              m.stopband_atten_db);

  // --- 2. Quantize both ways and compare every scheme. ---
  const int wordlength = 14;
  const int input_bits = 12;
  for (const bool maximal : {false, true}) {
    const number::QuantizedCoefficients q =
        maximal ? number::quantize_maximal(h, wordlength)
                : number::quantize_uniform(h, wordlength);
    std::printf("\n-- %s scaling (W=%d, quantization error %.2e) --\n",
                maximal ? "maximal" : "uniform", wordlength,
                q.max_abs_error(h));
    const std::vector<i64> bank = core::optimization_bank(q.values());
    for (const auto scheme :
         {core::Scheme::kSimple, core::Scheme::kCse, core::Scheme::kDiffMst,
          core::Scheme::kRagn, core::Scheme::kMrp, core::Scheme::kMrpCse}) {
      const core::SchemeResult r = core::optimize_bank(bank, scheme);
      std::printf("  %s\n", core::describe(r, input_bits).c_str());
    }

    // --- 3. Build the MRPF+CSE filter, verify, and profile power. ---
    const arch::TdfFilter filter = core::build_tdf(q, core::Scheme::kMrpCse);
    const sim::EquivalenceReport eq =
        sim::check_equivalence_suite(filter, input_bits);
    Rng rng(2026);
    const auto stimulus = sim::uniform_stream(rng, 2000, input_bits);
    const sim::PowerReport power = sim::measure_power(filter, stimulus);
    const std::string verilog =
        arch::emit_tdf_filter(filter, input_bits, "channel_select");
    std::printf(
        "  mrpf+cse filter: %s; %.1f toggles/sample; Verilog %zu lines\n",
        eq.to_string().c_str(), power.toggles_per_sample(),
        static_cast<std::size_t>(
            std::count(verilog.begin(), verilog.end(), '\n')));
  }
  return 0;
}
