// Export a synthesizable Verilog TDF filter for a catalog entry.
//
//   $ ./verilog_export [catalog_index] [wordlength] > filter.v
//
// Writes the MRPF+CSE architecture of the chosen Table-1 filter to stdout
// and a short cost summary to stderr.
#include <cstdio>
#include <cstdlib>

#include "mrpf/arch/cost_model.hpp"
#include "mrpf/arch/verilog.hpp"
#include "mrpf/core/flow.hpp"
#include "mrpf/filter/catalog.hpp"
#include "mrpf/number/quantize.hpp"
#include "mrpf/sim/equivalence.hpp"

int main(int argc, char** argv) {
  using namespace mrpf;

  const int index = argc > 1 ? std::atoi(argv[1]) : 2;
  const int wordlength = argc > 2 ? std::atoi(argv[2]) : 12;
  const int input_bits = 12;
  if (index < 0 || index >= filter::catalog_size()) {
    std::fprintf(stderr, "catalog index must be in [0, %d)\n",
                 filter::catalog_size());
    return 2;
  }

  const auto& h = filter::catalog_coefficients(index);
  const auto q = number::quantize_uniform(h, wordlength);
  const arch::TdfFilter filter = core::build_tdf(q, core::Scheme::kMrpCse);

  const sim::EquivalenceReport eq =
      sim::check_equivalence_suite(filter, input_bits);
  if (!eq.equivalent) {
    std::fprintf(stderr, "verification failed: %s\n", eq.to_string().c_str());
    return 1;
  }

  const arch::TdfMetrics metrics = filter.metrics();
  std::fprintf(stderr,
               "%s: %zu taps, %d multiplier adders (depth %d), "
               "%d structural adders, %d registers, CLA area %.1f — "
               "verified bit-exact\n",
               filter::catalog_spec(index).name.c_str(),
               filter.coefficients().size(), metrics.multiplier_adders,
               metrics.multiplier_depth, metrics.structural_adders,
               metrics.registers,
               arch::multiplier_block_area(filter.block().graph, input_bits));

  const std::string verilog = arch::emit_tdf_filter(
      filter, input_bits,
      "mrpf_" + filter::catalog_spec(index).name);
  std::fputs(verilog.c_str(), stdout);
  return 0;
}
