// MRP beyond FIR (paper §1): a transposed-direct-form IIR filter's two
// coefficient banks are vector×scalar products, so MRP optimizes them
// directly. This example designs an 8th-order Butterworth low-pass IIR,
// quantizes it, optimizes the feed-forward and feedback banks with every
// scheme, and verifies the block-based fixed-point filter bit-for-bit.
//
//   $ ./iir_scaling
#include <cmath>
#include <cstdio>

#include "mrpf/core/flow.hpp"
#include "mrpf/filter/iir.hpp"
#include "mrpf/sim/iir_fixed.hpp"
#include "mrpf/sim/workload.hpp"

int main() {
  using namespace mrpf;

  const filter::IirDesign design =
      filter::design_butterworth_iir(filter::BandType::kLowPass, 0.25, 8);
  const auto df = design.direct_form();
  const sim::QuantizedIir q = sim::quantize_iir(df, 14);

  std::printf("8th-order Butterworth LP, fc=0.25, W=14 (q=%d)\n", q.q);
  std::printf("  b bank:");
  for (const i64 v : q.b) std::printf(" %lld", static_cast<long long>(v));
  std::printf("\n  a bank:");
  for (const i64 v : q.a) std::printf(" %lld", static_cast<long long>(v));
  std::printf("\n\n%-9s %10s %10s\n", "scheme", "b adders", "a adders");

  const std::vector<i64> a_bank(q.a.begin() + 1, q.a.end());
  for (const auto scheme :
       {core::Scheme::kSimple, core::Scheme::kCse, core::Scheme::kRagn,
        core::Scheme::kMrp, core::Scheme::kMrpCse}) {
    const core::SchemeResult b_opt = core::optimize_bank(q.b, scheme);
    const core::SchemeResult a_opt = core::optimize_bank(a_bank, scheme);
    std::printf("%-9s %10d %10d\n", core::to_string(scheme).c_str(),
                b_opt.multiplier_adders, a_opt.multiplier_adders);
  }

  // Bit-exact check of the MRPF-based fixed-point filter.
  const core::SchemeResult b_mrp = core::optimize_bank(q.b, core::Scheme::kMrp);
  const core::SchemeResult a_mrp =
      core::optimize_bank(a_bank, core::Scheme::kMrp);
  Rng rng(7);
  const std::vector<i64> x = sim::uniform_stream(rng, 4000, 10);
  const std::vector<i64> want = sim::iir_fixed_reference(q, x);
  const std::vector<i64> got =
      sim::iir_fixed_blocks(q, b_mrp.block, a_mrp.block, x);
  std::printf("\nfixed-point MRPF IIR vs reference over %zu samples: %s\n",
              x.size(), want == got ? "bit-exact" : "MISMATCH");

  // Sanity: frequency response of the realized (quantized) filter.
  for (const double f : {0.05, 0.25, 0.6}) {
    std::printf("  |H(%.2f)| designed %.4f\n", f,
                std::abs(design.response_at(f)));
  }
  return want == got ? 0 : 1;
}
